"""Tests of the multi-partition protocol (Algorithm 3): max-of-commits,
MStable exchange, MBump optimisation."""

from __future__ import annotations

from repro.core.commands import Partitioner
from repro.core.config import ProtocolConfig
from repro.core.process import TempoProcess
from repro.kvstore.store import KeyValueStore
from repro.simulator.inline import RecordingNetwork


class PrefixPartitioner(Partitioner):
    """Keys ``pN-...`` map to partition N."""

    def __init__(self, partitions: int) -> None:
        super().__init__(num_partitions=partitions)

    def partition_of(self, key: str) -> int:
        if key.startswith("p") and "-" in key:
            return int(key[1:key.index("-")])
        return 0


def build_cluster(partitions=2, r=3, f=1):
    config = ProtocolConfig(num_processes=r, faults=f, num_partitions=partitions)
    partitioner = PrefixPartitioner(partitions)
    stores = {}
    processes = []
    for process_id in range(config.total_processes()):
        store = KeyValueStore(config.partition_of_process(process_id))
        stores[process_id] = store
        processes.append(
            TempoProcess(process_id, config, partitioner=partitioner, apply_fn=store.apply)
        )
    return config, processes, stores, RecordingNetwork(processes)


class TestMultiPartitionCommit:
    def test_final_timestamp_is_max_over_partitions(self):
        config, processes, _, network = build_cluster()
        # Skew the clocks of partition 1 so its proposal dominates.
        for process in processes:
            if process.partition == 1:
                process.clock.value = 50
        command = processes[0].new_command(["p0-a", "p1-b"])
        processes[0].submit(command, 0.0)
        network.settle(rounds=20)
        final = processes[0].committed_timestamp(command.dot)
        assert final is not None and final >= 51

    def test_all_partition_replicas_agree_on_final_timestamp(self):
        config, processes, _, network = build_cluster()
        command = processes[0].new_command(["p0-a", "p1-b"])
        processes[0].submit(command, 0.0)
        network.settle(rounds=20)
        timestamps = {
            process.committed_timestamp(command.dot)
            for process in processes
            if process.committed_timestamp(command.dot) is not None
        }
        assert len(timestamps) == 1

    def test_mbump_messages_are_sent_for_multi_partition_commands(self):
        config, processes, _, network = build_cluster()
        command = processes[0].new_command(["p0-a", "p1-b"])
        processes[0].submit(command, 0.0)
        network.settle(rounds=20)
        kinds = {kind for _, _, kind in network.log}
        assert "MBump" in kinds
        assert "MStable" in kinds

    def test_single_partition_commands_do_not_send_mbump(self):
        config, processes, _, network = build_cluster()
        command = processes[0].new_command(["p0-a"])
        processes[0].submit(command, 0.0)
        network.settle(rounds=20)
        kinds = {kind for _, _, kind in network.log}
        assert "MBump" not in kinds


class TestMultiPartitionExecution:
    def test_execution_happens_at_every_accessed_partition_only(self):
        config, processes, _, network = build_cluster(partitions=3)
        command = processes[0].new_command(["p0-a", "p2-b"])
        processes[0].submit(command, 0.0)
        network.settle(rounds=25)
        executed_partitions = {
            process.partition
            for process in processes
            if command.dot in process.executed_dots()
        }
        assert executed_partitions == {0, 2}

    def test_cross_partition_ordering_is_consistent(self):
        """Two commands accessing the same two partitions execute in the
        same relative order at both partitions (the Ordering property)."""
        config, processes, _, network = build_cluster()
        first = processes[0].new_command(["p0-x", "p1-x"])
        second = processes[4].new_command(["p0-x", "p1-x"])
        processes[0].submit(first, 0.0)
        processes[4].submit(second, 0.0)
        network.settle(rounds=25)
        orders = set()
        for process in processes:
            executed = [
                dot
                for dot in process.executed_dots()
                if dot in (first.dot, second.dot)
            ]
            if len(executed) == 2:
                orders.add(tuple(executed))
        assert len(orders) == 1

    def test_multi_partition_command_blocks_until_remote_partition_is_stable(self):
        config, processes, _, network = build_cluster()
        command = processes[0].new_command(["p0-a", "p1-b"])
        processes[0].submit(command, 0.0)
        # Only deliver a couple of rounds: commit may be reached, but the
        # MStable exchange needs the stability detection of both partitions.
        network.step(0.0)
        network.step(0.0)
        assert command.dot not in processes[0].executed_dots()
        network.settle(rounds=25)
        assert command.dot in processes[0].executed_dots()

    def test_mixed_single_and_multi_partition_commands_all_execute(self):
        config, processes, stores, network = build_cluster()
        commands = []
        for index in range(8):
            if index % 3 == 0:
                submitter = processes[0]
                command = submitter.new_command(["p0-x", "p1-y"])
            elif index % 3 == 1:
                submitter = processes[1]
                command = submitter.new_command(["p0-x"])
            else:
                submitter = processes[4]
                command = submitter.new_command(["p1-y"])
            submitter.submit(command, 0.0)
            commands.append((submitter, command))
        network.settle(rounds=30)
        for submitter, command in commands:
            assert command.dot in submitter.executed_dots()
