"""Tests for the range-native promise pipeline.

Covers the three properties the refactor relies on:

* **round-trip equivalence** — tracker ranges -> wire -> ``PromiseSet``
  absorption is indistinguishable from materialising every promise and
  feeding it through the historical per-promise path;
* **batch-scoped stability equivalence** — delivering a message sequence as
  one ``MBatch`` produces exactly the same execution order, promise state
  and outgoing traffic as delivering the messages one by one;
* **allocation witness** — the detached hot path (clock jump -> tracker ->
  broadcast -> absorption at a peer) materialises zero ``Promise`` objects.
"""

from __future__ import annotations

import pytest

from repro.core.commands import Partitioner
from repro.core.config import ProtocolConfig
from repro.core.identifiers import Dot
from repro.core.messages import MCommit, MPayload, MPromises
from repro.core.process import TempoProcess
from repro.core.base import MBatch
from repro.core.promises import (
    Promise,
    PromiseSet,
    PromiseTracker,
    RangeCollector,
    range_wire_count,
    range_wire_promises,
)
from repro.simulator.rng import SeededRng


def build(r=3, ids=None):
    config = ProtocolConfig(num_processes=r, faults=1)
    partitioner = Partitioner(1)
    return [
        TempoProcess(process_id, config, partitioner=partitioner)
        for process_id in (ids if ids is not None else range(r))
    ]


class TestRoundTrip:
    def test_snapshot_ranges_equals_materialised_snapshot(self):
        by_range = PromiseTracker(3)
        by_set = PromiseTracker(3)
        rng = SeededRng(11)
        cursor = 1
        for _ in range(50):
            width = int(rng.uniform_between(1, 40))
            gap = int(rng.uniform_between(0, 3))
            lo = cursor + gap
            hi = lo + width
            by_range.add_detached_range(lo, hi)
            by_set.add_detached(range(lo, hi + 1))
            cursor = hi + 1
        ranges, _ = by_range.snapshot_ranges(drain=False)
        materialised, _ = by_set.snapshot(drain=False)
        assert range_wire_promises({3: ranges}) == materialised

    def test_wire_to_tracker_to_emitted_ranges_matches_promise_sets(self):
        """ranges -> wire -> PromiseSet == the per-promise legacy path."""
        rng = SeededRng(7)
        wire = {}
        for process in range(5):
            spans = []
            cursor = 1
            for _ in range(10):
                lo = cursor + int(rng.uniform_between(0, 4))
                hi = lo + int(rng.uniform_between(0, 30))
                spans.append((lo, hi))
                cursor = hi + 2
            wire[process] = tuple(spans)

        via_ranges = PromiseSet()
        via_ranges.absorb_ranges(wire)
        via_promises = PromiseSet()
        via_promises.add_all(range_wire_promises(wire))

        processes = tuple(range(5))
        assert len(via_ranges) == len(via_promises)
        for process in processes:
            assert via_ranges.highest_contiguous_promise(
                process
            ) == via_promises.highest_contiguous_promise(process)
        assert via_ranges.stable_timestamp(processes) == via_promises.stable_timestamp(
            processes
        )

    def test_absorb_ranges_respects_the_peer_filter(self):
        promises = PromiseSet()
        promises.absorb_ranges({0: ((1, 5),), 7: ((1, 9),)}, only=frozenset({0, 1, 2}))
        assert promises.highest_contiguous_promise(0) == 5
        assert promises.highest_contiguous_promise(7) == 0

    def test_range_collector_equals_set_union(self):
        collector = RangeCollector()
        collector.update({1: ((4, 6),), 2: ((1, 1),)})
        collector.update({1: ((5, 9), (12, 12)), 2: ((2, 3),)})
        expected = (
            {Promise(1, t) for t in (4, 5, 6, 7, 8, 9, 12)}
            | {Promise(2, t) for t in (1, 2, 3)}
        )
        assert collector.promises() == expected
        assert collector.count() == len(expected)
        assert collector.to_wire() == {1: ((4, 9), (12, 12)), 2: ((1, 3),)}
        assert range_wire_count(collector.to_wire()) == len(expected)


def _drive(target, deliveries, batched: bool):
    """Deliver ``deliveries`` (sender, message) to ``target`` one by one or
    as a single MBatch from one sender, returning observable state."""
    if batched:
        sender = deliveries[0][0]
        target.deliver(sender, MBatch(tuple(m for _, m in deliveries)), 1.0)
    else:
        for sender, message in deliveries:
            target.deliver(sender, message, 1.0)
    outbox = [type(envelope.message).__name__ for envelope in target.drain_outbox()]
    return (
        tuple(target.executed_dots()),
        target.stable_timestamp(),
        sorted(outbox),
        len(target.promises),
    )


class TestBatchScopedStability:
    def _deliveries(self, coordinator, target):
        command_a = coordinator.new_command(["hot"])
        command_b = coordinator.new_command(["hot"])
        quorums = {0: tuple(coordinator.quorum_system.fast_quorum(0, 0))}
        return [
            (0, MPayload(command_a.dot, command_a, quorums)),
            (0, MPayload(command_b.dot, command_b, quorums)),
            (
                0,
                MCommit(
                    command_a.dot,
                    timestamp=1,
                    partition=0,
                    attached=frozenset({Promise(0, 1), Promise(1, 1)}),
                ),
            ),
            (
                0,
                MCommit(
                    command_b.dot,
                    timestamp=2,
                    partition=0,
                    attached=frozenset({Promise(0, 2), Promise(1, 2)}),
                ),
            ),
            (0, MPromises(Dot(0, 99), detached={0: ((3, 8),)})),
        ]

    def test_single_message_and_batched_delivery_are_equivalent(self):
        """The batch-delivery scope must not change execution order, promise
        state or emitted traffic — only *when* the reactive work runs."""
        results = []
        for batched in (False, True):
            processes = build()
            coordinator, target = processes[0], processes[2]
            results.append(
                _drive(target, self._deliveries(coordinator, target), batched)
            )
        assert results[0] == results[1]
        executed, stable, _, _ = results[0]
        assert len(executed) == 2  # both commands executed in (ts, id) order
        assert stable >= 2

    def test_direct_on_message_calls_keep_the_eager_behaviour(self):
        """Tests (and runtimes) that bypass ``deliver`` still get the
        historical react-immediately semantics."""
        processes = build()
        coordinator, target = processes[0], processes[2]
        for sender, message in self._deliveries(coordinator, target):
            target.on_message(sender, message, 1.0)
        assert len(target.executed_dots()) == 2


class TestStableNotificationTargets:
    """MStable recipients: self plus *other*-partition processes only.

    Same-partition peers derive stability locally (a command executes only
    once the local check pops it), so notifying them is pure redundancy;
    cross-partition processes cannot derive it and must be notified.
    """

    def test_single_partition_notifications_stay_local(self):
        process = build()[1]
        assert process._stable_targets_for({0: ()}) == [1]

    def test_multi_partition_notifications_cover_other_partitions(self):
        config = ProtocolConfig(num_processes=3, faults=1, num_partitions=2)
        process = TempoProcess(1, config, partitioner=Partitioner(2))
        targets = process._stable_targets_for({0: (), 1: ()})
        other = set(config.processes_of_partition(1))
        assert targets == sorted({1} | other)
        assert not (set(config.processes_of_partition(0)) - {1}) & set(targets)


class TestAllocationWitness:
    @pytest.fixture
    def promise_counter(self, monkeypatch):
        import repro.core.promises as promises_module

        counter = {"created": 0}
        original = promises_module.Promise.__post_init__

        def counting(self):
            counter["created"] += 1
            original(self)

        monkeypatch.setattr(promises_module.Promise, "__post_init__", counting)
        return counter

    def test_detached_hot_path_materialises_no_promises(self, promise_counter):
        """A clock jump of 10k timestamps crosses tracker, wire and a peer's
        PromiseSet without creating a single Promise object."""
        issuer, receiver = build(ids=(0, 1))
        issuer.tracker.add_detached_range(1, 10_000)
        issuer.promises.add_range(0, 1, 10_000)
        issuer.broadcast_promises(now=1.0)
        envelopes = issuer.drain_outbox()
        messages = [
            envelope.message
            for envelope in envelopes
            if type(envelope.message) is MPromises and envelope.destination == 1
        ]
        assert messages, "broadcast did not emit MPromises"
        receiver.deliver(0, messages[0], 1.0)
        assert receiver.promises.highest_contiguous_promise(0) == 10_000
        assert promise_counter["created"] == 0

    def test_commit_piggyback_path_materialises_no_detached_promises(
        self, promise_counter
    ):
        """The MProposeAck -> RangeCollector -> MCommit -> PromiseSet chain
        stays range-encoded end to end."""
        collector = RangeCollector()
        collector.update({1: ((1, 5_000),), 2: ((1, 4_999),)})
        wire = collector.to_wire()
        promises = PromiseSet()
        promises.absorb_ranges(wire, only=frozenset({1, 2}))
        assert promises.highest_contiguous_promise(1) == 5_000
        assert promise_counter["created"] == 0
