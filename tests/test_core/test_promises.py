"""Unit and property tests for promises and the promise set."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.identifiers import Dot
from repro.core.promises import Promise, PromiseSet, PromiseTracker


class TestPromise:
    def test_rejects_zero_timestamp(self):
        with pytest.raises(ValueError):
            Promise(0, 0)

    def test_rejects_negative_process(self):
        with pytest.raises(ValueError):
            Promise(-1, 1)

    def test_ordering(self):
        assert Promise(0, 1) < Promise(0, 2) < Promise(1, 1)


class TestPromiseTracker:
    def test_detached_promises_accumulate(self):
        tracker = PromiseTracker(0)
        tracker.add_detached([1, 2, 3])
        assert tracker.detached() == {Promise(0, 1), Promise(0, 2), Promise(0, 3)}

    def test_attached_promises_are_per_command(self):
        tracker = PromiseTracker(1)
        tracker.add_attached(Dot(0, 1), 5)
        tracker.add_attached(Dot(0, 2), 6)
        assert tracker.attached_for(Dot(0, 1)) == {Promise(1, 5)}
        assert tracker.attached_for(Dot(0, 2)) == {Promise(1, 6)}

    def test_snapshot_drains_pending_promises(self):
        tracker = PromiseTracker(0)
        tracker.add_detached([1])
        tracker.add_attached(Dot(0, 1), 2)
        detached, attached = tracker.snapshot(drain=True)
        assert detached == {Promise(0, 1)}
        assert attached == {Dot(0, 1): frozenset({Promise(0, 2)})}
        # Second snapshot is empty: each promise is sent only once.
        detached, attached = tracker.snapshot(drain=True)
        assert not detached and not attached

    def test_snapshot_without_drain_returns_everything(self):
        tracker = PromiseTracker(0)
        tracker.add_detached([1, 2])
        tracker.snapshot(drain=True)
        detached, _ = tracker.snapshot(drain=False)
        assert detached == {Promise(0, 1), Promise(0, 2)}

    def test_has_pending(self):
        tracker = PromiseTracker(0)
        assert not tracker.has_pending()
        tracker.add_detached([4])
        assert tracker.has_pending()
        tracker.snapshot(drain=True)
        assert not tracker.has_pending()

    def test_all_issued_combines_attached_and_detached(self):
        tracker = PromiseTracker(2)
        tracker.add_detached([1])
        tracker.add_attached(Dot(0, 1), 2)
        assert tracker.all_issued() == {Promise(2, 1), Promise(2, 2)}

    def test_duplicate_detached_promise_not_requeued(self):
        tracker = PromiseTracker(0)
        tracker.add_detached([1])
        tracker.snapshot(drain=True)
        tracker.add_detached([1])
        detached, _ = tracker.snapshot(drain=True)
        assert detached == frozenset()


class TestPromiseSet:
    def test_contiguous_frontier(self):
        promises = PromiseSet()
        promises.add_all([Promise(0, 1), Promise(0, 2), Promise(0, 4)])
        assert promises.highest_contiguous_promise(0) == 2
        promises.add(Promise(0, 3))
        assert promises.highest_contiguous_promise(0) == 4

    def test_unknown_process_has_zero_frontier(self):
        assert PromiseSet().highest_contiguous_promise(7) == 0

    def test_membership(self):
        promises = PromiseSet()
        promises.add(Promise(1, 1))
        promises.add(Promise(1, 3))
        assert Promise(1, 1) in promises
        assert Promise(1, 3) in promises
        assert Promise(1, 2) not in promises

    def test_duplicates_do_not_grow_the_set(self):
        promises = PromiseSet()
        promises.add(Promise(0, 1))
        promises.add(Promise(0, 1))
        assert len(promises) == 1

    def test_stable_timestamp_requires_majority(self):
        promises = PromiseSet()
        # Only process 0 has promises: nothing is stable with r = 3.
        promises.add_all([Promise(0, 1), Promise(0, 2)])
        assert promises.stable_timestamp([0, 1, 2]) == 0
        # A second process (majority of 3) brings stability up to 1.
        promises.add(Promise(1, 1))
        assert promises.stable_timestamp([0, 1, 2]) == 1

    def test_stable_timestamp_is_majority_minimum(self):
        promises = PromiseSet()
        for timestamp in range(1, 6):
            promises.add(Promise(0, timestamp))
        for timestamp in range(1, 4):
            promises.add(Promise(1, timestamp))
        promises.add(Promise(2, 1))
        # Frontiers are [5, 3, 1]; the majority value (index 1) is 3.
        assert promises.stable_timestamp([0, 1, 2]) == 3

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(1, 40)),
            max_size=120,
        )
    )
    def test_frontier_matches_naive_computation(self, pairs):
        promises = PromiseSet()
        naive = {}
        for process, timestamp in pairs:
            promises.add(Promise(process, timestamp))
            naive.setdefault(process, set()).add(timestamp)
        for process in range(4):
            known = naive.get(process, set())
            expected = 0
            while expected + 1 in known:
                expected += 1
            assert promises.highest_contiguous_promise(process) == expected

    @given(
        st.lists(
            st.tuples(st.integers(0, 4), st.integers(1, 30)),
            max_size=150,
        )
    )
    def test_stable_timestamp_never_exceeds_majority_frontier(self, pairs):
        promises = PromiseSet()
        for process, timestamp in pairs:
            promises.add(Promise(process, timestamp))
        processes = list(range(5))
        stable = promises.stable_timestamp(processes)
        above = sum(
            1
            for process in processes
            if promises.highest_contiguous_promise(process) >= stable
        )
        assert above >= len(processes) // 2 + 1 or stable == 0
