"""Unit and property tests for promises and the promise set."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.identifiers import Dot
from repro.core.promises import Promise, PromiseSet, PromiseTracker


class TestPromise:
    def test_rejects_zero_timestamp(self):
        with pytest.raises(ValueError):
            Promise(0, 0)

    def test_rejects_negative_process(self):
        with pytest.raises(ValueError):
            Promise(-1, 1)

    def test_ordering(self):
        assert Promise(0, 1) < Promise(0, 2) < Promise(1, 1)


class TestPromiseTracker:
    def test_detached_promises_accumulate(self):
        tracker = PromiseTracker(0)
        tracker.add_detached([1, 2, 3])
        assert tracker.detached() == {Promise(0, 1), Promise(0, 2), Promise(0, 3)}

    def test_attached_promises_are_per_command(self):
        tracker = PromiseTracker(1)
        tracker.add_attached(Dot(0, 1), 5)
        tracker.add_attached(Dot(0, 2), 6)
        assert tracker.attached_for(Dot(0, 1)) == {Promise(1, 5)}
        assert tracker.attached_for(Dot(0, 2)) == {Promise(1, 6)}

    def test_snapshot_drains_pending_promises(self):
        tracker = PromiseTracker(0)
        tracker.add_detached([1])
        tracker.add_attached(Dot(0, 1), 2)
        detached, attached = tracker.snapshot(drain=True)
        assert detached == {Promise(0, 1)}
        assert attached == {Dot(0, 1): frozenset({Promise(0, 2)})}
        # Second snapshot is empty: each promise is sent only once.
        detached, attached = tracker.snapshot(drain=True)
        assert not detached and not attached

    def test_snapshot_without_drain_returns_everything(self):
        tracker = PromiseTracker(0)
        tracker.add_detached([1, 2])
        tracker.snapshot(drain=True)
        detached, _ = tracker.snapshot(drain=False)
        assert detached == {Promise(0, 1), Promise(0, 2)}

    def test_has_pending(self):
        tracker = PromiseTracker(0)
        assert not tracker.has_pending()
        tracker.add_detached([4])
        assert tracker.has_pending()
        tracker.snapshot(drain=True)
        assert not tracker.has_pending()

    def test_all_issued_combines_attached_and_detached(self):
        tracker = PromiseTracker(2)
        tracker.add_detached([1])
        tracker.add_attached(Dot(0, 1), 2)
        assert tracker.all_issued() == {Promise(2, 1), Promise(2, 2)}

    def test_duplicate_detached_promise_not_requeued(self):
        tracker = PromiseTracker(0)
        tracker.add_detached([1])
        tracker.snapshot(drain=True)
        tracker.add_detached([1])
        detached, _ = tracker.snapshot(drain=True)
        assert detached == frozenset()

    def test_add_detached_range_matches_elementwise_add(self):
        by_range = PromiseTracker(0)
        by_range.add_detached_range(3, 7)
        elementwise = PromiseTracker(0)
        elementwise.add_detached([3, 4, 5, 6, 7])
        assert by_range.detached() == elementwise.detached()
        assert by_range.detached_ranges() == [(3, 7)]

    def test_add_detached_range_overlap_only_queues_new_timestamps(self):
        tracker = PromiseTracker(0)
        tracker.add_detached_range(1, 3)
        tracker.snapshot(drain=True)
        tracker.add_detached_range(2, 5)
        detached, _ = tracker.snapshot(drain=True)
        assert detached == {Promise(0, 4), Promise(0, 5)}
        assert tracker.detached_ranges() == [(1, 5)]

    def test_unsorted_detached_input_is_normalised(self):
        tracker = PromiseTracker(0)
        tracker.add_detached([5, 1, 3, 2])
        assert tracker.detached_ranges() == [(1, 3), (5, 5)]
        assert tracker.detached() == {
            Promise(0, 1), Promise(0, 2), Promise(0, 3), Promise(0, 5)
        }

    def test_garbage_collect_is_idempotent(self):
        tracker = PromiseTracker(0)
        tracker.add_detached([1, 2, 3, 4])
        tracker.add_attached(Dot(0, 1), 5)
        tracker.snapshot(drain=True)
        first = tracker.garbage_collect(3, [Dot(0, 1)])
        assert first == 3
        assert tracker.detached() == {Promise(0, 4)}
        # Re-entry with the same arguments drops nothing further.
        assert tracker.garbage_collect(3, [Dot(0, 1)]) == 0
        assert tracker.detached() == {Promise(0, 4)}

    def test_garbage_collect_keeps_pending_promises(self):
        tracker = PromiseTracker(0)
        tracker.add_detached([1, 2])
        tracker.snapshot(drain=True)
        tracker.add_detached([3])  # still pending
        dropped = tracker.garbage_collect(3, [])
        assert dropped == 2
        assert tracker.detached() == {Promise(0, 3)}
        detached, _ = tracker.snapshot(drain=True)
        assert detached == {Promise(0, 3)}

    def test_garbage_collect_drops_empty_attached_entries(self):
        tracker = PromiseTracker(0)
        tracker.add_attached(Dot(0, 1), 2)
        tracker.snapshot(drain=True)
        # Simulate an entry whose promise set emptied out.
        tracker._attached[Dot(0, 2)] = set()
        dropped = tracker.garbage_collect(10, [Dot(0, 1), Dot(0, 2)])
        assert dropped == 1
        assert tracker.attached() == {}

    def test_garbage_collect_never_drops_pending_attached(self):
        tracker = PromiseTracker(0)
        tracker.add_attached(Dot(0, 1), 2)
        dropped = tracker.garbage_collect(10, [Dot(0, 1)])
        assert dropped == 0
        assert tracker.attached_for(Dot(0, 1)) == {Promise(0, 2)}


class TestPromiseSet:
    def test_contiguous_frontier(self):
        promises = PromiseSet()
        promises.add_all([Promise(0, 1), Promise(0, 2), Promise(0, 4)])
        assert promises.highest_contiguous_promise(0) == 2
        promises.add(Promise(0, 3))
        assert promises.highest_contiguous_promise(0) == 4

    def test_unknown_process_has_zero_frontier(self):
        assert PromiseSet().highest_contiguous_promise(7) == 0

    def test_membership(self):
        promises = PromiseSet()
        promises.add(Promise(1, 1))
        promises.add(Promise(1, 3))
        assert Promise(1, 1) in promises
        assert Promise(1, 3) in promises
        assert Promise(1, 2) not in promises

    def test_duplicates_do_not_grow_the_set(self):
        promises = PromiseSet()
        promises.add(Promise(0, 1))
        promises.add(Promise(0, 1))
        assert len(promises) == 1

    def test_stable_timestamp_requires_majority(self):
        promises = PromiseSet()
        # Only process 0 has promises: nothing is stable with r = 3.
        promises.add_all([Promise(0, 1), Promise(0, 2)])
        assert promises.stable_timestamp([0, 1, 2]) == 0
        # A second process (majority of 3) brings stability up to 1.
        promises.add(Promise(1, 1))
        assert promises.stable_timestamp([0, 1, 2]) == 1

    def test_stable_timestamp_is_majority_minimum(self):
        promises = PromiseSet()
        for timestamp in range(1, 6):
            promises.add(Promise(0, timestamp))
        for timestamp in range(1, 4):
            promises.add(Promise(1, timestamp))
        promises.add(Promise(2, 1))
        # Frontiers are [5, 3, 1]; the majority value (index 1) is 3.
        assert promises.stable_timestamp([0, 1, 2]) == 3

    def test_stable_timestamp_even_partition_requires_strict_majority(self):
        """Theorem 1 for even ``r``: ``r/2`` processes are not a majority.

        With r = 4 and frontiers [9, 9, 1, 0] only two processes know all
        promises up to 9 — one short of the strict majority of 3 — so the
        stable timestamp is 1 (backed by frontiers 9, 9 and 1), not 9.
        """
        promises = PromiseSet()
        promises.add_range(0, 1, 9)
        promises.add_range(1, 1, 9)
        promises.add(Promise(2, 1))
        assert promises.stable_timestamp([0, 1, 2, 3]) == 1
        # A third process catching up makes 9 stable.
        promises.add_range(2, 2, 9)
        assert promises.stable_timestamp([0, 1, 2, 3]) == 9

    def test_stable_timestamp_two_processes_is_minimum(self):
        promises = PromiseSet()
        promises.add_range(0, 1, 5)
        promises.add_range(1, 1, 2)
        assert promises.stable_timestamp([0, 1]) == 2

    def test_out_of_order_insertion_advances_across_gaps(self):
        promises = PromiseSet()
        promises.add(Promise(0, 5))
        promises.add(Promise(0, 3))
        assert promises.highest_contiguous_promise(0) == 0
        promises.add(Promise(0, 1))
        assert promises.highest_contiguous_promise(0) == 1
        promises.add(Promise(0, 2))
        # 3 was waiting out of order; 4 is still missing.
        assert promises.highest_contiguous_promise(0) == 3
        promises.add(Promise(0, 4))
        assert promises.highest_contiguous_promise(0) == 5

    def test_duplicate_adds_after_frontier_absorption(self):
        promises = PromiseSet()
        promises.add_all([Promise(0, 1), Promise(0, 2)])
        size = len(promises)
        promises.add(Promise(0, 1))
        promises.add(Promise(0, 2))
        assert len(promises) == size

    def test_contains_after_frontier_absorption(self):
        promises = PromiseSet()
        promises.add_all([Promise(0, 2), Promise(0, 1), Promise(0, 4)])
        # 1 and 2 were absorbed into the frontier, 4 is out of order.
        assert Promise(0, 1) in promises
        assert Promise(0, 2) in promises
        assert Promise(0, 3) not in promises
        assert Promise(0, 4) in promises

    def test_add_range_extends_frontier(self):
        promises = PromiseSet()
        promises.add_range(0, 1, 100)
        assert promises.highest_contiguous_promise(0) == 100
        assert len(promises) == 100

    def test_add_range_absorbs_pending_timestamps(self):
        promises = PromiseSet()
        promises.add(Promise(0, 3))
        promises.add(Promise(0, 6))
        promises.add_range(0, 1, 4)
        # 3 was pending inside the range; 5 is missing, 6 stays pending.
        assert promises.highest_contiguous_promise(0) == 4
        assert len(promises) == 5
        promises.add(Promise(0, 5))
        assert promises.highest_contiguous_promise(0) == 6

    def test_add_range_above_frontier_stays_pending(self):
        promises = PromiseSet()
        promises.add_range(0, 5, 8)
        assert promises.highest_contiguous_promise(0) == 0
        assert Promise(0, 6) in promises
        promises.add_range(0, 1, 4)
        assert promises.highest_contiguous_promise(0) == 8

    def test_add_range_matches_elementwise_add(self):
        ranged = PromiseSet()
        elementwise = PromiseSet()
        for process, lo, hi in [(0, 4, 9), (0, 1, 3), (1, 2, 2), (0, 8, 12)]:
            ranged.add_range(process, lo, hi)
            elementwise.add_all(
                Promise(process, ts) for ts in range(lo, hi + 1)
            )
        assert len(ranged) == len(elementwise)
        for process in (0, 1):
            assert ranged.highest_contiguous_promise(
                process
            ) == elementwise.highest_contiguous_promise(process)

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(1, 40)),
            max_size=120,
        )
    )
    def test_frontier_matches_naive_computation(self, pairs):
        promises = PromiseSet()
        naive = {}
        for process, timestamp in pairs:
            promises.add(Promise(process, timestamp))
            naive.setdefault(process, set()).add(timestamp)
        for process in range(4):
            known = naive.get(process, set())
            expected = 0
            while expected + 1 in known:
                expected += 1
            assert promises.highest_contiguous_promise(process) == expected

    @given(
        st.lists(
            st.tuples(st.integers(0, 2), st.integers(1, 30), st.integers(0, 8)),
            max_size=60,
        )
    )
    def test_add_range_matches_naive_set_semantics(self, triples):
        promises = PromiseSet()
        naive = {}
        for process, lo, span in triples:
            promises.add_range(process, lo, lo + span)
            naive.setdefault(process, set()).update(range(lo, lo + span + 1))
        assert len(promises) == sum(len(known) for known in naive.values())
        for process in range(3):
            known = naive.get(process, set())
            expected = 0
            while expected + 1 in known:
                expected += 1
            assert promises.highest_contiguous_promise(process) == expected

    @given(
        st.lists(
            st.tuples(st.integers(0, 4), st.integers(1, 30)),
            max_size=150,
        )
    )
    def test_stable_timestamp_never_exceeds_majority_frontier(self, pairs):
        promises = PromiseSet()
        for process, timestamp in pairs:
            promises.add(Promise(process, timestamp))
        processes = list(range(5))
        stable = promises.stable_timestamp(processes)
        above = sum(
            1
            for process in processes
            if promises.highest_contiguous_promise(process) >= stable
        )
        assert above >= len(processes) // 2 + 1 or stable == 0
