"""Property-based tests of the PSMR specification for Tempo.

Random workloads (key choices, submitters) and adversarial message
re-orderings are generated with hypothesis; after the network quiesces the
PSMR properties of §2 are checked:

* Validity — every executed command was submitted and executes at most once;
* Ordering — the execution order of conflicting commands is identical at all
  replicas (acyclicity of the union of per-process orders);
* Timestamp agreement (Property 1) — no two processes commit the same
  command with different timestamps;
* Liveness under quiescence — every submitted command is eventually executed
  at every replica.
"""

from __future__ import annotations

from typing import List

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.commands import Partitioner
from repro.core.config import ProtocolConfig
from repro.core.process import TempoProcess
from repro.kvstore.store import KeyValueStore
from repro.simulator.inline import InlineNetwork


def run_workload(r, f, schedule, reorder_seed=None, ack_broadcast=True):
    """Submit the given schedule and settle; returns processes and commands.

    ``schedule`` is a list of (submitter, key_index) pairs; key index 0 is a
    shared hot key, other indices are per-submitter private keys.
    """
    config = ProtocolConfig(num_processes=r, faults=f)
    partitioner = Partitioner(1)
    stores = {}
    processes: List[TempoProcess] = []
    for process_id in range(r):
        store = KeyValueStore()
        stores[process_id] = store
        processes.append(
            TempoProcess(
                process_id,
                config,
                partitioner=partitioner,
                apply_fn=store.apply,
                ack_broadcast=ack_broadcast,
                watermark_gc=False,
            )
        )
    network = InlineNetwork(processes)
    if reorder_seed is not None:
        import random

        rng = random.Random(reorder_seed)

        def reorder(envelopes):
            shuffled = list(envelopes)
            rng.shuffle(shuffled)
            return shuffled

        network.set_reorder(reorder)
    commands = []
    for submitter, key_index in schedule:
        process = processes[submitter % r]
        key = "hot" if key_index == 0 else f"k{submitter % r}-{key_index}"
        command = process.new_command([key])
        process.submit(command, 0.0)
        commands.append(command)
        # Deliver a little as we go so schedules interleave.
        network.step(0.0)
    network.settle(rounds=30)
    return processes, stores, commands


schedule_strategy = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 2)), min_size=1, max_size=12
)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(schedule=schedule_strategy, seed=st.integers(0, 1_000))
def test_psmr_properties_hold_under_random_schedules(schedule, seed):
    processes, stores, commands = run_workload(3, 1, schedule, reorder_seed=seed)
    dots = [command.dot for command in commands]

    # Liveness under quiescence: everything executes everywhere.
    for process in processes:
        executed = process.executed_dots()
        assert set(dots) <= set(executed)
        # Validity: at most once.
        assert len(executed) == len(set(executed))

    # Property 1: timestamp agreement.
    for dot in dots:
        timestamps = {process.committed_timestamp(dot) for process in processes}
        timestamps.discard(None)
        assert len(timestamps) == 1

    # Ordering: all processes execute all commands in the same total order
    # (Tempo orders every pair of commands by timestamp/id, so the full
    # execution order must match).
    orders = {
        tuple(dot for dot in process.executed_dots() if dot in set(dots))
        for process in processes
    }
    assert len(orders) == 1

    # Replicated state convergence.
    snapshots = {tuple(sorted(store.snapshot().items())) for store in stores.values()}
    assert len(snapshots) == 1


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(schedule=schedule_strategy, seed=st.integers(0, 1_000))
def test_psmr_properties_with_five_replicas_f2(schedule, seed):
    processes, stores, commands = run_workload(5, 2, schedule, reorder_seed=seed)
    dots = {command.dot for command in commands}
    for process in processes:
        assert dots <= set(process.executed_dots())
    for dot in dots:
        timestamps = {process.committed_timestamp(dot) for process in processes}
        timestamps.discard(None)
        assert len(timestamps) == 1
    orders = {
        tuple(dot for dot in process.executed_dots() if dot in dots)
        for process in processes
    }
    assert len(orders) == 1


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(schedule=schedule_strategy)
def test_psmr_properties_without_ack_broadcast(schedule):
    """The paper-literal protocol (no ack broadcast) satisfies the same
    properties."""
    processes, stores, commands = run_workload(
        3, 1, schedule, ack_broadcast=False
    )
    dots = {command.dot for command in commands}
    for process in processes:
        assert dots <= set(process.executed_dots())
    orders = {
        tuple(dot for dot in process.executed_dots() if dot in dots)
        for process in processes
    }
    assert len(orders) == 1


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    schedule=st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 1)), min_size=1, max_size=8
    ),
    victim=st.integers(0, 2),
)
def test_crash_of_one_replica_preserves_safety(schedule, victim):
    """Crashing any single replica (f = 1) never violates agreement or
    ordering among the survivors."""
    config = ProtocolConfig(num_processes=3, faults=1)
    partitioner = Partitioner(1)
    processes = [
        TempoProcess(
            process_id, config, partitioner=partitioner, watermark_gc=False
        )
        for process_id in range(3)
    ]
    network = InlineNetwork(processes)
    commands = []
    half = max(1, len(schedule) // 2)
    for index, (submitter, key_index) in enumerate(schedule):
        process = processes[submitter]
        if not process.alive:
            continue
        key = "hot" if key_index == 0 else f"k{submitter}"
        command = process.new_command([key])
        process.submit(command, 0.0)
        commands.append(command)
        network.step(0.0)
        if index == half:
            processes[victim].crash()
            processes[victim].outbox.clear()
            for process in processes:
                process.set_alive_view(victim, False)
    # Let the survivors recover pending commands via the leader.
    survivors = [process for process in processes if process.alive]
    for process in survivors:
        for dot in process.pending_dots():
            if process._should_attempt_recovery(dot):
                process.recover(dot, 0.0)
    network.settle(rounds=30)
    # Agreement among survivors for every command committed anywhere.
    for command in commands:
        timestamps = {
            process.committed_timestamp(command.dot) for process in survivors
        }
        timestamps.discard(None)
        assert len(timestamps) <= 1
    # Ordering among survivors.
    executed_sets = [set(process.executed_dots()) for process in survivors]
    common = set.intersection(*executed_sets) if executed_sets else set()
    orders = {
        tuple(dot for dot in process.executed_dots() if dot in common)
        for process in survivors
    }
    assert len(orders) <= 1
