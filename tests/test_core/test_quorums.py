"""Unit tests for the quorum system."""

from __future__ import annotations

import pytest

from repro.core.config import ProtocolConfig
from repro.core.quorums import QuorumSystem


def latency_table(num_processes: int, sites_latency):
    """Build a symmetric process-level latency table from per-rank rows."""
    table = {}
    for a in range(num_processes):
        table[a] = {}
        for b in range(num_processes):
            table[a][b] = sites_latency[a][b]
    return table


class TestFastQuorums:
    def test_includes_coordinator_first(self):
        config = ProtocolConfig(num_processes=5, faults=1)
        quorums = QuorumSystem(config)
        quorum = quorums.fast_quorum(2, 0)
        assert quorum[0] == 2
        assert len(quorum) == config.fast_quorum_size

    def test_members_belong_to_partition(self):
        config = ProtocolConfig(num_processes=3, faults=1, num_partitions=2)
        quorums = QuorumSystem(config)
        quorum = quorums.fast_quorum(4, 1)
        assert set(quorum) <= set(config.processes_of_partition(1))

    def test_latency_aware_choice_prefers_closest(self):
        config = ProtocolConfig(num_processes=5, faults=1)
        # Process 0 is 10ms from 4, 50ms from 1, 100ms from the rest.
        latencies = {
            a: {b: 100.0 for b in range(5)} for a in range(5)
        }
        latencies[0][4] = 10.0
        latencies[0][1] = 50.0
        quorums = QuorumSystem(config, latencies=latencies)
        assert quorums.fast_quorum(0, 0) == [0, 4, 1]

    def test_coordinator_must_replicate_partition(self):
        config = ProtocolConfig(num_processes=3, faults=1, num_partitions=2)
        quorums = QuorumSystem(config)
        with pytest.raises(ValueError):
            quorums.fast_quorum(0, 1)

    def test_is_valid_fast_quorum(self):
        config = ProtocolConfig(num_processes=5, faults=2)
        quorums = QuorumSystem(config)
        quorum = quorums.fast_quorum(1, 0)
        assert quorums.is_valid_fast_quorum(quorum, 0)
        assert not quorums.is_valid_fast_quorum(quorum[:-1], 0)
        assert not quorums.is_valid_fast_quorum(quorum + [quorum[0]], 0)


class TestSlowQuorums:
    def test_size_is_f_plus_one(self):
        config = ProtocolConfig(num_processes=5, faults=2)
        quorums = QuorumSystem(config)
        assert len(quorums.slow_quorum(0, 0)) == 3

    def test_includes_coordinator(self):
        config = ProtocolConfig(num_processes=5, faults=1)
        quorums = QuorumSystem(config)
        assert quorums.slow_quorum(3, 0)[0] == 3


class TestCoordinators:
    def test_coordinator_is_submitter_when_it_replicates_the_partition(self):
        config = ProtocolConfig(num_processes=3, faults=1, num_partitions=2)
        quorums = QuorumSystem(config)
        assert quorums.coordinator_for(4, 1) == 4

    def test_coordinator_is_colocated_replica_for_other_partitions(self):
        config = ProtocolConfig(num_processes=3, faults=1, num_partitions=2)
        quorums = QuorumSystem(config)
        # Process 1 (rank 1 of partition 0) -> rank-1 replica of partition 1.
        assert quorums.coordinator_for(1, 1) == 4

    def test_coordinators_for_multiple_partitions(self):
        config = ProtocolConfig(num_processes=3, faults=1, num_partitions=3)
        quorums = QuorumSystem(config)
        coordinators = quorums.coordinators_for(0, [0, 1, 2])
        assert coordinators == {0: 0, 1: 3, 2: 6}

    def test_fast_quorums_mapping_covers_all_partitions(self):
        config = ProtocolConfig(num_processes=3, faults=1, num_partitions=2)
        quorums = QuorumSystem(config)
        mapping = quorums.fast_quorums(0, [0, 1])
        assert set(mapping) == {0, 1}
        for partition, quorum in mapping.items():
            assert set(quorum) <= set(config.processes_of_partition(partition))
            assert len(quorum) == config.fast_quorum_size
