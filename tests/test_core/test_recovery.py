"""Tests of the Tempo recovery protocol (Algorithm 4) and failure handling."""

from __future__ import annotations

from repro.core.commands import Partitioner
from repro.core.config import ProtocolConfig
from repro.core.phases import Phase
from repro.core.process import TempoProcess
from repro.kvstore.store import KeyValueStore
from repro.simulator.inline import InlineNetwork, RecordingNetwork


def build_cluster(r=5, f=1):
    config = ProtocolConfig(num_processes=r, faults=f)
    partitioner = Partitioner(1)
    stores = {}
    processes = []
    for process_id in range(r):
        store = KeyValueStore()
        stores[process_id] = store
        processes.append(
            TempoProcess(
                process_id,
                config,
                partitioner=partitioner,
                apply_fn=store.apply,
                watermark_gc=False,
            )
        )
    return processes, stores, InlineNetwork(processes)


def crash_and_update_views(processes, network, victim):
    processes[victim].crash()
    for process in processes:
        process.set_alive_view(victim, False)


def submit_and_crash_before_commit(processes, network, coordinator_id=0, key="x"):
    """Submit a command at ``coordinator_id`` and crash it before any
    MCommit is delivered, leaving the command pending at the other
    replicas."""
    coordinator = processes[coordinator_id]
    command = coordinator.new_command([key])
    coordinator.submit(command, 0.0)
    # Deliver the MPropose/MPayload round only, then crash the coordinator
    # so its MCommit (not yet sent or queued afterwards) never arrives.
    network.step(0.0)
    crash_and_update_views(processes, network, coordinator_id)
    # Drop whatever the crashed coordinator still had queued.
    processes[coordinator_id].outbox.clear()
    return command


class TestBallots:
    def test_initial_ballot_is_rank_plus_one(self):
        processes, _, _ = build_cluster()
        assert processes[0]._own_ballot() == 1
        assert processes[3]._own_ballot() == 4

    def test_recovery_ballots_are_above_r_and_owned_by_recoverer(self):
        processes, _, _ = build_cluster()
        process = processes[2]
        ballot = process._next_recovery_ballot(0)
        assert ballot > 5
        assert process.ballot_owner_rank(ballot) == 2
        higher = process._next_recovery_ballot(ballot)
        assert higher > ballot
        assert process.ballot_owner_rank(higher) == 2

    def test_ballot_owner_rank_round_robin(self):
        processes, _, _ = build_cluster()
        process = processes[0]
        assert process.ballot_owner_rank(1) == 0
        assert process.ballot_owner_rank(5) == 4
        assert process.ballot_owner_rank(6) == 0
        assert process.ballot_owner_rank(8) == 2


class TestRecoveryAfterCoordinatorCrash:
    def test_command_is_recovered_and_executed_without_the_coordinator(self):
        processes, _, network = build_cluster(r=5, f=1)
        command = submit_and_crash_before_commit(processes, network)
        # The leader (lowest-id alive process, i.e. process 1) recovers.
        recoverer = processes[1]
        recoverer.recover(command.dot, 0.0)
        network.settle(rounds=20)
        for process in processes[1:]:
            assert process.committed_timestamp(command.dot) is not None
            assert command.dot in process.executed_dots()

    def test_recovered_timestamp_matches_potential_fast_path_value(self):
        """Property 4: if the coordinator could have taken the fast path,
        recovery must choose the same (max) timestamp."""
        processes, _, network = build_cluster(r=5, f=1)
        # Give the fast-quorum members distinct clocks so the max is known.
        quorum = processes[0].quorum_system.fast_quorum(0, 0)
        others = [p for p in quorum if p != 0]
        processes[others[0]].clock.value = 7
        processes[others[1]].clock.value = 3
        command = submit_and_crash_before_commit(processes, network)
        expected = 8  # max(1, 7+1, 3+1)
        recoverer = processes[1]
        recoverer.recover(command.dot, 0.0)
        network.settle(rounds=20)
        committed = {
            process.committed_timestamp(command.dot)
            for process in processes[1:]
        }
        committed.discard(None)
        assert committed == {expected}

    def test_recovery_with_f2_and_two_failures(self):
        processes, _, network = build_cluster(r=5, f=2)
        command = submit_and_crash_before_commit(processes, network)
        # Crash one more fast-quorum member (f = 2 tolerates it).
        quorum = processes[0].quorum_system.fast_quorum(0, 0)
        second_victim = [p for p in quorum if p != 0][0]
        crash_and_update_views(processes, network, second_victim)
        processes[second_victim].outbox.clear()
        alive = [p for p in processes if p.alive]
        recoverer = min(alive, key=lambda p: p.process_id)
        recoverer.recover(command.dot, 0.0)
        network.settle(rounds=25)
        for process in alive:
            assert process.committed_timestamp(command.dot) is not None

    def test_non_leader_does_not_start_recovery_spontaneously(self):
        processes, _, network = build_cluster()
        command = submit_and_crash_before_commit(processes, network)
        # Process 3 is not the leader (process 1 is), so the periodic check
        # must not trigger recovery from it.
        assert not processes[3]._should_attempt_recovery(command.dot)
        assert processes[1]._should_attempt_recovery(command.dot)

    def test_recovery_is_idempotent(self):
        processes, _, network = build_cluster()
        command = submit_and_crash_before_commit(processes, network)
        recoverer = processes[1]
        recoverer.recover(command.dot, 0.0)
        network.settle(rounds=15)
        first = recoverer.committed_timestamp(command.dot)
        # A second recovery attempt (e.g. spurious timeout) must not change
        # the decision.
        recoverer.recover(command.dot, 0.0)
        network.settle(rounds=15)
        assert recoverer.committed_timestamp(command.dot) == first


class TestRecoveryAfterSlowPathAcceptance:
    def test_recovery_adopts_value_accepted_in_consensus(self):
        """If a quorum accepted a consensus proposal before the coordinator
        crashed, recovery must choose that same timestamp (Invariant 7)."""
        processes, _, network = build_cluster(r=5, f=2)
        coordinator = processes[0]
        quorum = coordinator.quorum_system.fast_quorum(0, 0)
        others = [p for p in quorum if p != 0]
        # Force a slow path: unique max proposal.
        processes[others[0]].clock.value = 6
        processes[others[1]].clock.value = 10
        processes[others[2]].clock.value = 5
        command = coordinator.new_command(["x"])
        coordinator.submit(command, 0.0)
        # Run propose + acks + the MConsensus round, then crash the
        # coordinator before it broadcasts MCommit.
        network.step(0.0)   # propose/payload
        network.step(0.0)   # acks -> coordinator sends MConsensus
        network.step(0.0)   # consensus accepted at replicas
        crash_and_update_views(processes, network, 0)
        processes[0].outbox.clear()
        recoverer = processes[1]
        recoverer.recover(command.dot, 0.0)
        network.settle(rounds=25)
        committed = {
            process.committed_timestamp(command.dot) for process in processes[1:]
        }
        committed.discard(None)
        assert committed == {11}


class TestRecoveryHandlers:
    def test_mrec_from_lower_ballot_gets_nack(self):
        processes, _, network = build_cluster()
        command = submit_and_crash_before_commit(processes, network)
        target = processes[1]
        from repro.core.messages import MRec, MRecNAck

        # First a high ballot...
        target.deliver(2, MRec(command.dot, 12), 0.0)
        target.drain_outbox()
        # ...then a lower one: it must be rejected with an MRecNAck.
        target.deliver(3, MRec(command.dot, 7), 0.0)
        nacks = [
            envelope
            for envelope in target.drain_outbox()
            if isinstance(envelope.message, MRecNAck)
        ]
        assert nacks and nacks[0].message.ballot == 12

    def test_mrec_on_committed_command_is_ignored(self):
        processes, _, network = build_cluster()
        command = processes[0].new_command(["x"])
        processes[0].submit(command, 0.0)
        network.settle()
        from repro.core.messages import MRec

        target = processes[1]
        target.deliver(2, MRec(command.dot, 20), 0.0)
        replies = [
            envelope
            for envelope in target.drain_outbox()
            if type(envelope.message).__name__ in ("MRecAck", "MRecNAck")
        ]
        assert not replies

    def test_payload_phase_process_computes_proposal_during_recovery(self):
        processes, _, network = build_cluster()
        command = submit_and_crash_before_commit(processes, network)
        # A process outside the fast quorum is in the payload phase.
        quorum = set(processes[0].quorum_system.fast_quorum(0, 0))
        outsider = next(p for p in processes[1:] if p.process_id not in quorum)
        assert outsider.phase_of(command.dot) is Phase.PAYLOAD
        from repro.core.messages import MRec

        outsider.deliver(1, MRec(command.dot, 11), 0.0)
        assert outsider.phase_of(command.dot) is Phase.RECOVER_R
        assert outsider.info(command.dot).timestamp > 0

    def test_propose_phase_process_moves_to_recover_p(self):
        processes, _, network = build_cluster()
        command = submit_and_crash_before_commit(processes, network)
        quorum = [p for p in processes[0].quorum_system.fast_quorum(0, 0) if p != 0]
        member = processes[quorum[0]]
        assert member.phase_of(command.dot) is Phase.PROPOSE
        from repro.core.messages import MRec

        member.deliver(1, MRec(command.dot, 11), 0.0)
        assert member.phase_of(command.dot) is Phase.RECOVER_P


class TestLivenessMechanisms:
    def test_commit_request_resends_payload_and_commit(self):
        processes, _, network = build_cluster()
        command = processes[0].new_command(["x"])
        processes[0].submit(command, 0.0)
        network.settle()
        from repro.core.messages import MCommit, MCommitRequest, MPayload

        replier = processes[1]
        replier.deliver(4, MCommitRequest(command.dot), 0.0)
        replies = replier.drain_outbox()
        kinds = [type(envelope.message) for envelope in replies]
        assert MPayload in kinds and MCommit in kinds

    def test_recovery_timeout_triggers_leader_recovery(self):
        processes, _, network = build_cluster()
        command = submit_and_crash_before_commit(processes, network)
        leader = processes[1]
        # Simulate the passage of time past the recovery timeout.
        leader.tick(leader.config.recovery_timeout + 1_000.0)
        network.run(leader.config.recovery_timeout + 1_000.0)
        network.settle(rounds=20)
        assert leader.committed_timestamp(command.dot) is not None

    def test_crashed_process_ignores_messages(self):
        processes, _, network = build_cluster()
        command = processes[0].new_command(["x"])
        processes[0].crash()
        before = dict(processes[0].message_counts)
        processes[0].deliver(1, command, 0.0)
        assert processes[0].message_counts == before
