"""Recovery tests with the ack-broadcast optimisation disabled.

Without ack broadcast, only the coordinator learns the fast-quorum
proposals, so crashing it before it sends MCommit genuinely requires the
recovery protocol (Algorithm 4) to make progress.  These tests exercise the
two cases of the MRecAck handler (initial coordinator replied / did not
reply) and the adoption of previously accepted consensus values.
"""

from __future__ import annotations

from repro.core.commands import Partitioner
from repro.core.config import ProtocolConfig
from repro.core.messages import MConsensus, MRec
from repro.core.process import TempoProcess
from repro.simulator.inline import RecordingNetwork


def build_cluster(r=5, f=1):
    config = ProtocolConfig(num_processes=r, faults=f)
    partitioner = Partitioner(1)
    processes = [
        TempoProcess(
            process_id,
            config,
            partitioner=partitioner,
            ack_broadcast=False,
            watermark_gc=False,
        )
        for process_id in range(r)
    ]
    return processes, RecordingNetwork(processes)


def crash(processes, victim):
    processes[victim].crash()
    processes[victim].outbox.clear()
    for process in processes:
        process.set_alive_view(victim, False)


class TestRecoveryWithoutAckBroadcast:
    def test_crash_before_commit_requires_and_completes_recovery(self):
        processes, network = build_cluster()
        coordinator = processes[0]
        command = coordinator.new_command(["x"])
        coordinator.submit(command, 0.0)
        network.step(0.0)  # MPropose reaches the quorum
        crash(processes, 0)
        # Nothing can commit without recovery: acks only target process 0.
        network.settle(rounds=5)
        assert all(
            processes[i].committed_timestamp(command.dot) is None for i in range(1, 5)
        )
        processes[1].recover(command.dot, 0.0)
        network.settle(rounds=20)
        recovery_kinds = {kind for _, _, kind in network.log}
        assert "MRec" in recovery_kinds and "MRecAck" in recovery_kinds
        committed = {
            processes[i].committed_timestamp(command.dot) for i in range(1, 5)
        }
        committed.discard(None)
        assert len(committed) == 1
        for i in range(1, 5):
            assert command.dot in processes[i].executed_dots()

    def test_case2_recovers_the_fast_path_timestamp(self):
        """Initial coordinator missing, all intersection members in
        recover-p: the recovered timestamp must equal the max proposal of
        the surviving fast-quorum members (Property 4)."""
        processes, network = build_cluster()
        coordinator = processes[0]
        quorum = coordinator.quorum_system.fast_quorum(0, 0)
        others = [p for p in quorum if p != 0]
        processes[others[0]].clock.value = 9
        processes[others[1]].clock.value = 4
        command = coordinator.new_command(["x"])
        coordinator.submit(command, 0.0)
        network.step(0.0)
        crash(processes, 0)
        processes[1].recover(command.dot, 0.0)
        network.settle(rounds=20)
        committed = {
            processes[i].committed_timestamp(command.dot) for i in range(1, 5)
        }
        committed.discard(None)
        assert committed == {10}  # max(9+1, 4+1, coordinator's 1)

    def test_case1_coordinator_replies_so_any_majority_max_works(self):
        """If the initial coordinator itself replies to MRec, it cannot have
        taken the fast path, and recovery may choose the majority max."""
        processes, network = build_cluster()
        coordinator = processes[0]
        command = coordinator.new_command(["x"])
        coordinator.submit(command, 0.0)
        # Do not deliver anything: only the coordinator knows the command
        # (phase propose at the coordinator via self-delivery).
        for process in processes:
            process.outbox.clear()
        # The other processes learn the payload out of band (the periodic
        # MPayload re-broadcast of §B) and one of them starts recovery with
        # the coordinator still alive.
        from repro.core.messages import MPayload

        quorums = {0: tuple(coordinator.quorum_system.fast_quorum(0, 0))}
        for process in processes[1:]:
            process.deliver(0, MPayload(command.dot, command, quorums), 0.0)
        processes[1].recover(command.dot, 0.0)
        network.settle(rounds=20)
        committed = {
            process.committed_timestamp(command.dot)
            for process in processes
            if process.committed_timestamp(command.dot) is not None
        }
        assert len(committed) == 1

    def test_consensus_value_from_older_ballot_is_adopted(self):
        """A value accepted in consensus survives recovery (Invariant 7)."""
        processes, network = build_cluster(r=5, f=2)
        coordinator = processes[0]
        quorum = coordinator.quorum_system.fast_quorum(0, 0)
        others = [p for p in quorum if p != 0]
        processes[others[0]].clock.value = 6
        processes[others[1]].clock.value = 10
        processes[others[2]].clock.value = 5
        command = coordinator.new_command(["x"])
        coordinator.submit(command, 0.0)
        network.step(0.0)  # propose
        network.step(0.0)  # acks -> slow path MConsensus sent
        network.step(0.0)  # consensus accepted at f+1
        crash(processes, 0)
        processes[1].recover(command.dot, 0.0)
        network.settle(rounds=25)
        committed = {
            processes[i].committed_timestamp(command.dot) for i in range(1, 5)
        }
        committed.discard(None)
        assert committed == {11}

    def test_stale_ballot_consensus_is_rejected_with_nack(self):
        processes, network = build_cluster()
        coordinator = processes[0]
        command = coordinator.new_command(["x"])
        coordinator.submit(command, 0.0)
        network.step(0.0)
        target = processes[1]
        target.deliver(2, MRec(command.dot, 12), 0.0)
        target.drain_outbox()
        target.deliver(3, MConsensus(command.dot, 99, 3), 0.0)
        nacks = [
            envelope
            for envelope in target.drain_outbox()
            if type(envelope.message).__name__ == "MRecNAck"
        ]
        assert nacks and nacks[0].message.ballot == 12

    def test_competing_recoveries_still_agree(self):
        """Two processes both try to recover; ballots ensure a single
        decision (Property 1)."""
        processes, network = build_cluster()
        coordinator = processes[0]
        command = coordinator.new_command(["x"])
        coordinator.submit(command, 0.0)
        network.step(0.0)
        crash(processes, 0)
        processes[1].recover(command.dot, 0.0)
        processes[2].recover(command.dot, 0.0)
        network.settle(rounds=30)
        committed = {
            processes[i].committed_timestamp(command.dot) for i in range(1, 5)
        }
        committed.discard(None)
        assert len(committed) == 1
