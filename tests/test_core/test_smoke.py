"""End-to-end smoke tests of the Tempo protocol on an inline network."""

from __future__ import annotations


class TestSinglePartitionSmoke:
    def test_single_command_commits_and_executes(self, cluster_3):
        command = cluster_3.submit(0, ["x"])
        cluster_3.settle()
        for process in cluster_3.processes:
            assert command.dot in process.executed_dots()
            assert cluster_3.stores[process.process_id].get("x") is not None

    def test_same_timestamp_everywhere(self, cluster_3):
        command = cluster_3.submit(0, ["x"])
        cluster_3.settle()
        timestamps = {
            process.committed_timestamp(command.dot)
            for process in cluster_3.processes
        }
        assert len(timestamps) == 1
        assert timestamps.pop() is not None

    def test_conflicting_commands_execute_in_same_order(self, cluster_3):
        first = cluster_3.submit(0, ["x"])
        second = cluster_3.submit(1, ["x"])
        third = cluster_3.submit(2, ["x"])
        cluster_3.settle()
        orders = set()
        for process in cluster_3.processes:
            executed = [
                dot
                for dot in process.executed_dots()
                if dot in {first.dot, second.dot, third.dot}
            ]
            assert len(executed) == 3
            orders.add(tuple(executed))
        assert len(orders) == 1

    def test_many_commands_all_execute(self, cluster_5_f1):
        commands = []
        for index in range(20):
            submitter = index % 5
            commands.append(cluster_5_f1.submit(submitter, [f"k{index % 3}"]))
        cluster_5_f1.settle(rounds=20)
        for process in cluster_5_f1.processes:
            executed = set(process.executed_dots())
            for command in commands:
                assert command.dot in executed


class TestMultiPartitionSmoke:
    def test_multi_partition_command_executes_on_both(self, cluster_2x3):
        process = cluster_2x3.process(0)
        command = process.new_command(["p0-a", "p1-b"])
        process.submit(command, 0.0)
        cluster_2x3.settle(rounds=20)
        executed_partitions = set()
        for proc in cluster_2x3.processes:
            if command.dot in proc.executed_dots():
                executed_partitions.add(proc.partition)
        assert executed_partitions == {0, 1}

    def test_single_partition_commands_in_multi_partition_deployment(self, cluster_2x3):
        process0 = cluster_2x3.process(0)
        process3 = cluster_2x3.process(3)
        command0 = process0.new_command(["p0-x"])
        command1 = process3.new_command(["p1-y"])
        process0.submit(command0, 0.0)
        process3.submit(command1, 0.0)
        cluster_2x3.settle(rounds=20)
        assert command0.dot in process0.executed_dots()
        assert command1.dot in process3.executed_dots()
