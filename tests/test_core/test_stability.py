"""Unit tests for the stability-detection helpers (Theorem 1, Figure 2)."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.identifiers import Dot
from repro.core.promises import Promise, PromiseSet
from repro.core.stability import (
    execution_order,
    highest_contiguous_promises,
    is_stable,
    promise_table,
    stable_timestamp,
)


def _promise_set(entries):
    promises = PromiseSet()
    promises.add_all(Promise(process, timestamp) for process, timestamp in entries)
    return promises


class TestStableTimestamp:
    def test_empty_set_is_never_stable(self):
        promises = PromiseSet()
        assert stable_timestamp(promises, [0, 1, 2]) == 0
        assert not is_stable(promises, [0, 1, 2], 1)

    def test_majority_rule(self):
        promises = _promise_set([(0, 1), (0, 2), (1, 1), (1, 2), (2, 1)])
        assert stable_timestamp(promises, [0, 1, 2]) == 2
        assert is_stable(promises, [0, 1, 2], 2)
        assert not is_stable(promises, [0, 1, 2], 3)

    def test_five_processes_need_three_frontiers(self):
        promises = _promise_set(
            [(0, 1), (0, 2), (0, 3), (1, 1), (1, 2), (2, 1), (3, 1), (3, 2)]
        )
        # Frontiers: [3, 2, 1, 2, 0] -> sorted [0, 1, 2, 2, 3] -> index 2 = 2.
        assert stable_timestamp(promises, [0, 1, 2, 3, 4]) == 2

    def test_highest_contiguous_promises_helper(self):
        promises = _promise_set([(0, 1), (1, 1), (1, 2)])
        assert highest_contiguous_promises(promises, [0, 1, 2]) == {0: 1, 1: 2, 2: 0}


class TestFigure2:
    X = (Promise(0, 1), Promise(2, 3))
    Y = (Promise(1, 1), Promise(1, 2), Promise(1, 3))
    Z = (Promise(0, 2), Promise(2, 1), Promise(2, 2))

    def test_combinations_match_figure(self):
        rows = dict(promise_table([self.X, self.Y, self.Z], [0, 1, 2]))
        assert rows["0"] == 0 and rows["1"] == 0 and rows["2"] == 0
        assert rows["0+1"] == 1
        assert rows["0+2"] == 2
        assert rows["1+2"] == 2
        assert rows["0+1+2"] == 3


class TestExecutionOrder:
    def test_orders_by_timestamp_then_identifier(self):
        committed = {Dot(1, 1): 2, Dot(0, 1): 2, Dot(2, 1): 1, Dot(0, 2): 5}
        assert execution_order(committed, stable_up_to=2) == [
            Dot(2, 1),
            Dot(0, 1),
            Dot(1, 1),
        ]

    def test_excludes_commands_above_the_stable_timestamp(self):
        committed = {Dot(0, 1): 3, Dot(1, 1): 4}
        assert execution_order(committed, stable_up_to=3) == [Dot(0, 1)]

    def test_empty_when_nothing_stable(self):
        assert execution_order({Dot(0, 1): 5}, stable_up_to=0) == []

    @given(
        st.dictionaries(
            st.builds(Dot, st.integers(0, 3), st.integers(1, 50)),
            st.integers(min_value=1, max_value=30),
            max_size=30,
        ),
        st.integers(min_value=0, max_value=30),
    )
    def test_order_is_total_and_deterministic(self, committed, stable):
        order = execution_order(committed, stable)
        # Deterministic: same input, same order.
        assert order == execution_order(committed, stable)
        # Sorted by (timestamp, dot).
        keys = [(committed[dot], dot) for dot in order]
        assert keys == sorted(keys)
        # Exactly the commands at or below the stable timestamp are included.
        assert set(order) == {dot for dot, ts in committed.items() if ts <= stable}
