"""Wire-format tests: exhaustiveness gate, round-trips, fuzzing, corruption.

Three layers of guarantee:

* **Exhaustiveness** — every :class:`~repro.core.messages.Message` subclass
  defined in :mod:`repro.core.messages` and
  :mod:`repro.protocols.dep_messages` has a registered codec and a sample,
  so a new message kind cannot ship without a wire format.
* **Round-trip** — ``decode(encode(m)) == m`` for every kind, on canonical
  samples and on hypothesis-generated instances (randomised commands,
  dots, promise interval maps, nested ``MBatch`` envelopes).
* **Rejection** — truncated frames, trailing garbage, unknown kind bytes
  and corrupt varints raise :class:`~repro.wire.WireError`, never a random
  exception or a bogus message.

Plus the source gate: ``struct`` (and any hand-rolled binary packing) must
not leak outside ``repro/wire/`` — mirrors ``test_scheduler_api.py``.
"""

from __future__ import annotations

import inspect

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
import repro.core.messages as core_messages
import repro.protocols.dep_messages as dep_messages
from repro.core.base import MBatch
from repro.core.commands import Command, KeyOp, OpKind
from repro.core.identifiers import Dot, intern_dot
from repro.core.messages import (
    ClientReply,
    MBump,
    MCommit,
    Message,
    MPromises,
    MPropose,
    MProposeAck,
    TEMPO_MESSAGE_TYPES,
)
from repro.core.promises import Promise
from repro.protocols.dep_messages import DEP_MESSAGE_TYPES, MCaesarProposeAck
from repro.wire import (
    TYPE_TO_KIND,
    WireError,
    decode,
    decode_frame,
    encode,
    encode_frame,
    encoded_size,
    has_codec,
    registered_types,
    sample_messages,
)

def _message_classes():
    """Every concrete Message subclass defined in the two message modules."""
    classes = []
    for module in (core_messages, dep_messages):
        for _, obj in inspect.getmembers(module, inspect.isclass):
            if (
                issubclass(obj, Message)
                and obj is not Message
                and obj.__module__ == module.__name__
            ):
                classes.append(obj)
    return classes


class TestExhaustiveness:
    def test_every_message_subclass_has_a_codec(self):
        missing = [
            cls.__name__ for cls in _message_classes() if not has_codec(cls)
        ]
        assert not missing, (
            f"message kinds without a wire codec: {missing} — register them "
            "in repro/wire/codecs.py (_REGISTRY_SPEC) and add a sample"
        )

    def test_batch_envelope_has_a_codec(self):
        assert has_codec(MBatch)

    def test_every_registered_kind_has_a_sample(self):
        samples = sample_messages()
        sampled = {type(message) for message in samples.values()}
        missing = [
            cls.__name__ for cls in registered_types() if cls not in sampled
        ]
        assert not missing, f"registered kinds without a sample: {missing}"

    def test_type_tuples_match_the_registry(self):
        registered = set(registered_types())
        for cls in TEMPO_MESSAGE_TYPES + DEP_MESSAGE_TYPES:
            assert cls in registered

    def test_kind_bytes_are_stable(self):
        # The registry is append-only: re-numbering breaks any stored or
        # in-flight frame.  Spot-check anchors across the id space.
        assert TYPE_TO_KIND[MBatch] == 0
        assert TYPE_TO_KIND[core_messages.MSubmit] == 1
        assert TYPE_TO_KIND[core_messages.ClientReply] == 16
        assert TYPE_TO_KIND[dep_messages.MPreAccept] == 17
        assert TYPE_TO_KIND[dep_messages.MJanusDeps] == 31
        assert TYPE_TO_KIND[core_messages.MPromiseResync] == 32
        assert TYPE_TO_KIND[core_messages.MExecutedClock] == 33
        assert TYPE_TO_KIND[core_messages.MDeliveryAck] == 34
        assert TYPE_TO_KIND[core_messages.MStableRequest] == 35
        assert len(TYPE_TO_KIND) == 36

    def test_codec_exhaustiveness_lint_agrees(self):
        # The same closure properties, as enforced repo-wide by
        # ``python -m repro.analysis.lint``.
        from repro.analysis.lint import codec_exhaustiveness_findings

        assert not [str(finding) for finding in codec_exhaustiveness_findings()]


class TestRoundTrip:
    @pytest.mark.parametrize(
        "kind", sorted(sample_messages()), ids=lambda kind: kind
    )
    def test_sample_round_trips(self, kind):
        message = sample_messages()[kind]
        assert decode(encode(message)) == message
        decoded, offset = decode_frame(encode_frame(message))
        assert decoded == message
        assert offset == len(encode_frame(message)) == encoded_size(message)

    def test_message_encoded_size_method(self):
        message = sample_messages()["MCommit"]
        assert message.encoded_size() == encoded_size(message)

    def test_consecutive_frames_decode_by_offset(self):
        samples = sample_messages()
        messages = [samples["MPropose"], samples["MStable"], samples["MBatch"]]
        data = b"".join(encode_frame(message) for message in messages)
        offset = 0
        decoded = []
        while offset < len(data):
            message, offset = decode_frame(data, offset)
            decoded.append(message)
        assert decoded == messages

    def test_dots_decode_interned(self):
        # Identity holds for densely-allocated dots (the intern table is
        # filled in sequence order, like a real process allocating ids).
        for sequence in range(1, 10):
            intern_dot(40, sequence)
        message = decode(encode(MBump(dot=intern_dot(40, 9), timestamp=5)))
        assert message.dot is intern_dot(40, 9)


# -- hypothesis strategies ------------------------------------------------------

_keys = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=0x2FF), min_size=1, max_size=12
)
_dots = st.builds(
    intern_dot,
    st.integers(min_value=0, max_value=64),
    st.integers(min_value=1, max_value=2**40),
)
_key_ops = st.builds(
    KeyOp,
    key=_keys,
    kind=st.sampled_from(OpKind),
    value=st.one_of(st.none(), _keys),
)
_commands = st.builds(
    Command,
    dot=_dots,
    ops=st.lists(_key_ops, min_size=1, max_size=4, unique_by=lambda op: op.key).map(tuple),
    payload_size=st.integers(min_value=0, max_value=4096),
    client_id=st.one_of(st.none(), st.integers(min_value=0, max_value=2**31)),
)
_spans = st.tuples(
    st.integers(min_value=1, max_value=2**32), st.integers(min_value=0, max_value=2**16)
).map(lambda pair: (pair[0], pair[0] + pair[1]))
_range_wires = st.dictionaries(
    st.integers(min_value=0, max_value=32),
    st.lists(_spans, min_size=1, max_size=4).map(tuple),
    max_size=4,
)
_promises = st.builds(
    Promise,
    st.integers(min_value=0, max_value=32),
    st.integers(min_value=1, max_value=2**40),
)
_promise_sets = st.frozensets(_promises, max_size=6)


class TestFuzzRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(command=_commands)
    def test_commands_round_trip(self, command):
        message = MPropose(
            dot=command.dot, command=command, quorums={0: (0, 1, 2)}, timestamp=17
        )
        assert decode(encode(message)) == message

    @settings(max_examples=60, deadline=None)
    @given(dot=_dots, attached=_promise_sets, detached=_range_wires)
    def test_promise_payloads_round_trip(self, dot, attached, detached):
        ack = MProposeAck(dot=dot, timestamp=3, attached=attached, detached=detached)
        commit = MCommit(
            dot=dot, timestamp=9, partition=1, attached=attached, detached=detached
        )
        assert decode(encode(ack)) == ack
        assert decode(encode(commit)) == commit

    @settings(max_examples=40, deadline=None)
    @given(
        dot=_dots,
        detached=_range_wires,
        attached=st.dictionaries(_dots, _promise_sets, max_size=3),
        committed=st.frozensets(_dots, max_size=4),
    )
    def test_promise_broadcast_round_trips(self, dot, detached, attached, committed):
        message = MPromises(
            dot=dot, detached=detached, attached=attached, committed=committed
        )
        assert decode(encode(message)) == message

    @settings(max_examples=40, deadline=None)
    @given(
        dot=_dots,
        timestamp=st.tuples(
            st.integers(min_value=0, max_value=2**40),
            st.integers(min_value=0, max_value=64),
        ),
        dependencies=st.frozensets(_dots, max_size=5),
        accepted=st.booleans(),
    )
    def test_baseline_messages_round_trip(self, dot, timestamp, dependencies, accepted):
        message = MCaesarProposeAck(
            dot=dot, timestamp=timestamp, dependencies=dependencies, accepted=accepted
        )
        assert decode(encode(message)) == message

    @settings(max_examples=40, deadline=None)
    @given(
        result=st.one_of(
            st.none(),
            st.dictionaries(_keys, st.one_of(st.none(), _keys), max_size=4),
        ),
        dot=_dots,
    )
    def test_client_reply_round_trips(self, result, dot):
        message = ClientReply(dot=dot, result=result)
        assert decode(encode(message)) == message

    @settings(max_examples=30, deadline=None)
    @given(
        inner=st.lists(
            st.sampled_from(sorted(sample_messages())), min_size=1, max_size=6
        )
    )
    def test_batches_round_trip(self, inner):
        samples = sample_messages()
        batch = MBatch(tuple(samples[kind] for kind in inner))
        assert decode(encode(batch)) == batch

    def test_nested_batches_round_trip(self):
        samples = sample_messages()
        inner = MBatch((samples["MStable"], samples["MConsensusAck"]))
        outer = MBatch((samples["MCommit"], inner, samples["MBump"]))
        assert decode(encode(outer)) == outer


class TestRejection:
    def test_every_truncation_is_rejected(self):
        # Chop the frame at every possible length: each prefix must raise
        # WireError (decode_frame never returns a message from a short buffer).
        frame = encode_frame(sample_messages()["MPropose"])
        for cut in range(len(frame)):
            with pytest.raises(WireError):
                decode_frame(frame[:cut])

    def test_trailing_garbage_is_rejected(self):
        payload = encode(sample_messages()["MStable"])
        with pytest.raises(WireError):
            decode(payload + b"\x00")

    def test_unknown_kind_byte_is_rejected(self):
        with pytest.raises(WireError):
            decode(bytes([255]))

    def test_corrupt_varint_is_rejected(self):
        # 10 continuation bytes: longer than any valid uvarint.
        with pytest.raises(WireError):
            decode(bytes([TYPE_TO_KIND[MBump]]) + b"\x80" * 11)

    def test_empty_buffer_is_rejected(self):
        with pytest.raises(WireError):
            decode(b"")
        with pytest.raises(WireError):
            decode_frame(b"")

    def test_invalid_promise_range_is_rejected(self):
        message = MCommit(dot=intern_dot(0, 1), timestamp=2, detached={0: ((0, 4),)})
        with pytest.raises(WireError):
            encode(message)

    def test_bitflips_never_escape_wireerror(self):
        # Corruption may still decode to a *different* valid message (no
        # checksum in the frame), but it must never raise anything other
        # than WireError.
        frame = encode_frame(sample_messages()["MProposeAck"])
        for position in range(len(frame)):
            for bit in (0x01, 0x80):
                corrupt = bytearray(frame)
                corrupt[position] ^= bit
                try:
                    decode_frame(bytes(corrupt))
                except WireError:
                    pass


def test_struct_stays_inside_the_wire_package():
    # struct/binary packing is a wire concern: everything outside
    # ``repro/wire/`` talks in message objects and lets the codecs do
    # bytes.  Enforced by the import-aware ``struct-outside-wire`` lint
    # (also run repo-wide via ``python -m repro.analysis.lint`` in CI).
    from repro.analysis.lint import struct_import_findings

    offenders = [str(finding) for finding in struct_import_findings()]
    assert not offenders, (
        "struct imported outside repro/wire/ — binary packing belongs to "
        "the codec layer:\n" + "\n".join(offenders)
    )
