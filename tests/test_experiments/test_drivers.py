"""Tests for the figure/table experiment drivers (fast ones only; the
simulation-heavy drivers are exercised by the benchmark harness)."""

from __future__ import annotations

import pytest

from repro.experiments import fig2_stability, fig8_batching, fig9_partial, pathological, table1_fastpath
from repro.experiments.fig7_load import Figure7Options, heatmap, saturation_table, speedups


class TestTable1:
    def test_all_examples_match_the_paper(self):
        rows = table1_fastpath.run()
        assert [row["example"] for row in rows] == ["a", "b", "c", "d"]
        for row in rows:
            assert row["fast_path(analytic)"] == row["expected_fast_path"]
            assert row["fast_path(simulated)"] == row["expected_fast_path"]

    def test_example_a_timestamps(self):
        rows = {row["example"]: row for row in table1_fastpath.run()}
        assert rows["a"]["proposals"] == (6, 7, 11, 11)
        assert rows["a"]["timestamp"] == 11
        assert rows["d"]["proposals"] == (6, 6, 6)
        assert rows["d"]["match"] is True

    def test_simulated_commands_execute_everywhere(self):
        for example in table1_fastpath.TABLE1_EXAMPLES:
            row = table1_fastpath.simulate_row(example)
            assert row["executed_everywhere"] is True


class TestFigure2And3:
    def test_figure2_rows_match_expected_values(self):
        for row in fig2_stability.figure2_rows():
            assert row["stable_timestamp"] == row["expected"]

    def test_figure3_tempo_executes_w_and_y(self):
        outcome = fig2_stability.figure3_tempo()
        assert outcome["stable_timestamp"] == 2
        assert [str(dot) for dot in outcome["executable"]] == ["0.1", "1.1"]

    def test_figure3_epaxos_blocks_on_uncommitted_x(self):
        outcome = fig2_stability.figure3_epaxos()
        assert outcome["executable"] == []
        assert outcome["largest_component"] == 3

    def test_figure3_caesar_commits_nothing(self):
        outcome = fig2_stability.figure3_caesar()
        assert outcome["committed"] == []
        assert ("z", "x") in outcome["blocked_chain"]


class TestFigure7Driver:
    def test_saturation_table_has_one_row_per_protocol_and_rate(self):
        options = Figure7Options(conflict_rates=(0.02,), protocols=(("tempo", 1), ("fpaxos", 1)))
        rows = saturation_table(options)
        assert len(rows) == 2

    def test_speedups_computed_against_tempo(self):
        rows = saturation_table()
        ratios = speedups(rows)
        assert ratios["tempo/fpaxos f=1@0.02"] > 3.0

    def test_heatmap_contains_bottlenecks(self):
        rows = heatmap()
        bottlenecks = {row["protocol"]: row["bottleneck"] for row in rows}
        assert bottlenecks["atlas"] == "execution"
        assert bottlenecks["tempo"] == "cpu"


class TestFigure8Driver:
    def test_rows_cover_all_payloads_and_protocols(self):
        rows = fig8_batching.run()
        assert len(rows) == 6
        assert {row["payload_bytes"] for row in rows} == {256, 1024, 4096}

    def test_gains_dictionary(self):
        gains = fig8_batching.batching_gains(fig8_batching.run())
        assert gains["fpaxos f=1@256B"] > gains["fpaxos f=1@4096B"]


class TestFigure9Driver:
    def test_tempo_scales_with_shards(self):
        rows = fig9_partial.run()
        by_shards = {}
        for row in rows:
            by_shards.setdefault(row["shards"], []).append(row["tempo_kops"])
        assert max(by_shards[2]) < max(by_shards[4]) < max(by_shards[6])

    def test_janus_degrades_with_writes_and_contention(self):
        rows = {(row["shards"], row["zipf"]): row for row in fig9_partial.run()}
        row = rows[(4, 0.7)]
        assert row["janus_w0_kops"] > row["janus_w5_kops"] > row["janus_w50_kops"]
        assert rows[(4, 0.7)]["janus_w50_kops"] < rows[(4, 0.5)]["janus_w50_kops"]

    def test_speedup_ranges_match_paper_brackets(self):
        for row in fig9_partial.run():
            assert 1.0 <= row["speedup_vs_w5"] <= 5.0
            assert 2.0 <= row["speedup_vs_w50"] <= 16.0

    def test_avg_shards_per_command(self):
        assert fig9_partial._avg_shards_per_command(1) == 1.0
        assert fig9_partial._avg_shards_per_command(2) == pytest.approx(1.5)
        assert fig9_partial._avg_shards_per_command(6) == pytest.approx(2 - 1 / 6)

    def test_contention_interpolation(self):
        assert fig9_partial._contention(0.5) == 0.06
        assert fig9_partial._contention(0.7) == 0.22
        assert 0.06 < fig9_partial._contention(0.6) < 0.22


class TestPathologicalDriver:
    def test_tempo_progresses_while_others_stall(self):
        rows = {row["protocol"]: row for row in pathological.run(rounds=5)}
        assert rows["tempo"]["committed_during"] > 0
        assert rows["epaxos"]["executed_during"] == 0
        assert rows["caesar"]["committed_during"] == 0
        assert rows["caesar"]["blocked_replies"] > 0

    def test_everything_recovers_after_the_adversary_stops(self):
        for row in pathological.run(rounds=4):
            assert row["executed_final"] == row["submitted"]

    def test_epaxos_component_grows_with_rounds(self):
        small = pathological.replay_schedule("epaxos", rounds=3)
        large = pathological.replay_schedule("epaxos", rounds=7)
        assert large.largest_component > small.largest_component

    def test_unknown_protocol_rejected(self):
        with pytest.raises(KeyError):
            pathological.replay_schedule("raft", rounds=2)
