"""Epoch-2 equivalence witness: features on vs off, same histories.

The epoch-2 re-baseline turned on two protocol-level mechanisms — fast-path
``MCommit`` elision and the globally-executed watermark GC — and froze new
golden outputs.  The written equivalence argument lives in
``docs/epoch2_rebaseline.md``; this module is its *executable* witness: the
same deterministic submission schedule is run A/B with the epoch-1 and the
epoch-2 feature set, every execution event is recorded through the
:mod:`repro.analysis` trace machinery, and the traces must match exactly —
same per-replica execution order, same committed timestamp per identifier,
same final stores.  Elision changes who *delivers* a commit (self-commit at
fast-quorum members instead of a coordinator broadcast), and GC changes
what is *retained* after global execution; neither may change what is
*decided*.

Both traces additionally pass the full consistency check, so the witness
is certified, not just self-consistent.
"""

from __future__ import annotations

import pytest

from repro.analysis.trace import ExecutionTraceRecorder
from repro.core.commands import Partitioner
from repro.core.config import ProtocolConfig
from repro.core.process import TempoProcess
from repro.kvstore.store import KeyValueStore
from repro.protocols.atlas import AtlasProcess
from repro.protocols.caesar import CaesarProcess
from repro.protocols.epaxos import EPaxosProcess
from repro.simulator.inline import InlineNetwork

R = 3
#: (submitter, keys) per wave: conflicting and disjoint commands mixed, so
#: the schedule exercises both the contended and the uncontended paths.
WAVES = [
    [(0, ["hot"]), (1, ["a"]), (2, ["hot", "b"])],
    [(1, ["hot"]), (2, ["a", "b"]), (0, ["c"])],
    [(2, ["hot"]), (0, ["a"]), (1, ["b", "c"])],
]


def run_schedule(factory, **kwargs):
    """Run the deterministic schedule; return (trace, stores, processes)."""
    config = ProtocolConfig(num_processes=R, faults=1)
    partitioner = Partitioner(1)
    stores = {}
    processes = []
    for process_id in range(R):
        store = KeyValueStore()
        stores[process_id] = store
        processes.append(
            factory(
                process_id,
                config,
                partitioner=partitioner,
                apply_fn=store.apply,
                **kwargs,
            )
        )
    recorder = ExecutionTraceRecorder().attach(processes)
    network = InlineNetwork(processes)
    for wave, submissions in enumerate(WAVES):
        now = 100.0 * wave
        for submitter, keys in submissions:
            process = processes[submitter]
            command = process.new_command(list(keys))
            recorder.note_submit(command.dot, keys, now)
            process.submit(command, now)
        # Long enough for several gc_interval windows, so collection runs
        # BETWEEN waves — later commands decide on top of collected state.
        network.settle(now=now, rounds=80)
    recorder.check().raise_if_violations()
    trace = {
        process_id: [
            (event.dot, event.keys, event.timestamp) for event in events
        ]
        for process_id, events in recorder.events_by_process.items()
    }
    snapshots = {
        process_id: tuple(sorted(store.snapshot().items()))
        for process_id, store in stores.items()
    }
    return trace, snapshots, processes


class TestTempoEquivalence:
    def test_elision_and_gc_preserve_the_decided_history(self):
        epoch1_trace, epoch1_stores, _ = run_schedule(
            TempoProcess, commit_elision=False, watermark_gc=False
        )
        epoch2_trace, epoch2_stores, processes = run_schedule(
            TempoProcess, commit_elision=True, watermark_gc=True
        )
        assert epoch2_trace == epoch1_trace
        assert epoch2_stores == epoch1_stores
        # The witness is not vacuous: the epoch-2 run really collected.
        assert all(process.gc.collected_count > 0 for process in processes)

    def test_features_are_independent(self):
        # Each feature alone must also be equivalence preserving (a
        # compensating pair of bugs across the two features would slip
        # through the combined A/B alone).
        baseline, stores, _ = run_schedule(
            TempoProcess, commit_elision=False, watermark_gc=False
        )
        for kwargs in (
            {"commit_elision": True, "watermark_gc": False},
            {"commit_elision": False, "watermark_gc": True},
        ):
            trace, snapshots, _ = run_schedule(TempoProcess, **kwargs)
            assert trace == baseline, kwargs
            assert snapshots == stores, kwargs


class TestDependencyEquivalence:
    @pytest.mark.parametrize("factory", [AtlasProcess, EPaxosProcess, CaesarProcess])
    def test_watermark_gc_preserves_the_decided_history(self, factory):
        epoch1_trace, epoch1_stores, _ = run_schedule(
            factory, watermark_gc=False
        )
        epoch2_trace, epoch2_stores, processes = run_schedule(
            factory, watermark_gc=True
        )
        assert epoch2_trace == epoch1_trace
        assert epoch2_stores == epoch1_stores
        assert all(process.gc.collected_count > 0 for process in processes)
