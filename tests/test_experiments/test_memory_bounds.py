"""Epoch-2 memory-bound regression: live state is O(in-flight), not O(run).

The watermark GC's whole point is that protocol bookkeeping no longer grows
with run length: per-command ``_info`` records and per-key executed archives
are dropped once globally executed, and the per-key conflict window is
bounded by concurrency.  These tests run the same contended fig6-style cell
at a base duration and at 10× that duration and assert the memory columns
stay flat — a laundering of the archives back into O(executed) growth fails
here long before it would OOM a real deployment.

The columns come from :meth:`ProcessBase.memory_footprint` via the
experiment stats (``live_records`` / ``archived_records`` /
``peak_live_per_key`` / ``gc_collected``); ``BENCH_fig6.json`` carries the
same columns for the full benchmark and CI gates them there too.
"""

from __future__ import annotations

import pytest

from repro.cluster.config import ExperimentConfig
from repro.cluster.runner import run_experiment


def run_cell(protocol: str, duration_ms: float) -> dict:
    config = ExperimentConfig(
        protocol=protocol,
        num_sites=5,
        faults=1,
        clients_per_site=4,
        conflict_rate=0.15,
        duration_ms=duration_ms,
        warmup_ms=100.0,
        seed=1,
    )
    return run_experiment(config).stats


BASE_MS = 400.0
LONG_MS = 4_000.0  # 10x


class TestMemoryStaysFlat:
    @pytest.mark.parametrize("protocol", ["tempo", "atlas", "caesar"])
    def test_live_state_does_not_scale_with_run_length(self, protocol):
        short = run_cell(protocol, BASE_MS)
        long = run_cell(protocol, LONG_MS)

        # The run processed ~10x the commands...
        assert long["gc_collected"] > 4 * short["gc_collected"]

        # ...but the end-of-run live records and executed archives drained
        # to (at most) a straggler tail awaiting the final clock exchange,
        # independent of duration.
        tail = 2 * 5 * 4  # two commands per client still in flight
        assert long["live_records"] <= tail, long
        assert long["archived_records"] <= tail, long

        # The per-key conflict window is bounded by concurrency, not run
        # length: 10x the duration may not widen the high-water mark beyond
        # noise.
        assert long["peak_live_per_key"] <= short["peak_live_per_key"] + 4, (
            short["peak_live_per_key"],
            long["peak_live_per_key"],
        )

    def test_gc_actually_collected_the_history(self):
        stats = run_cell("tempo", BASE_MS)
        # The collected count is the witness that records existed and were
        # dropped (not that nothing was ever tracked).
        assert stats["gc_collected"] > 100, stats["gc_collected"]
        assert stats["live_records"] == 0, stats["live_records"]
