"""Regression tests for the commit-request debounce (message traffic).

The seed implementation re-requested commit info on every promise broadcast
mentioning an in-flight command, pushing ~16k ``MCommitRequest`` messages
through a single fig5 run.  The phase-aware debounce plus the slimmed
request targeting must keep that an order of magnitude lower while leaving
the figure outputs byte-identical (checked by the results-drift CI step).
"""

from __future__ import annotations

from functools import lru_cache

from repro.cluster.config import ExperimentConfig
from repro.cluster.runner import run_experiment


def run_fig5_row(protocol: str, faults: int) -> dict:
    config = ExperimentConfig(
        protocol=protocol,
        num_sites=5,
        faults=faults,
        clients_per_site=8,
        conflict_rate=0.02,
        duration_ms=2_500.0,
        warmup_ms=500.0,
        seed=1,
    )
    return run_experiment(config).stats


class TestCommitRequestTraffic:
    def test_fig5_commit_request_count_dropped_an_order_of_magnitude(self):
        """The two Tempo rows of fig5 sent ~16k MCommitRequests in the seed
        (the other protocols send none); the debounce keeps their combined
        total under 2k."""
        total = 0.0
        for faults in (1, 2):
            stats = run_fig5_row("tempo", faults)
            total += stats.get("sent:MCommitRequest", 0.0)
        assert total < 2_000, f"commit-request storm is back: {total:.0f} requests"
        # Sanity floor: the mechanism itself must still be exercised (the
        # PAYLOAD-phase acceleration requests are load-bearing for the
        # fig5/fig6 tempo latencies).
        assert total > 100

    def test_experiment_stats_expose_per_kind_counts_and_batches(self):
        stats = run_fig5_row("tempo", 1)
        assert stats["messages_sent"] > 0
        assert stats["batches_sent"] > 0
        per_kind_total = sum(
            value for key, value in stats.items() if key.startswith("sent:")
        )
        assert per_kind_total == stats["messages_sent"]


@lru_cache(maxsize=None)
def run_fig6_row(protocol: str, faults: int) -> dict:
    """A scaled-down fig6 cell (contended microbenchmark, 5 sites).

    Cached: the run is deterministic (seeded), and several gates below read
    different counters off the same cell.
    """
    config = ExperimentConfig(
        protocol=protocol,
        num_sites=5,
        faults=faults,
        clients_per_site=8,
        conflict_rate=0.15,
        duration_ms=2_000.0,
        warmup_ms=500.0,
        seed=1,
    )
    return run_experiment(config).stats


class TestFig6Traffic:
    """Traffic-count regression gates for the fig6 contended workload.

    The ceilings sit ~25 % above the counts measured at the epoch-2
    re-baseline: MCommit elision trims Tempo's commit fan-out, while the
    watermark-GC clock exchange (``MExecutedClock`` at the ``gc_interval``
    cadence) adds a small periodic stream to every protocol (see
    ``BENCH_fig6.json`` for the full-benchmark numbers); a CI failure here
    means a change re-inflated the message traffic of the contended path.
    """

    #: Measured messages_sent per protocol (seed 1), with ~25 % headroom.
    CEILINGS = {
        ("tempo", 1): (10_320, 12_900),
        ("atlas", 1): (6_267, 7_800),
        ("epaxos", 1): (5_499, 6_900),
    }

    def test_fig6_message_counts_stay_bounded(self):
        for (protocol, faults), (measured, ceiling) in self.CEILINGS.items():
            stats = run_fig6_row(protocol, faults)
            sent = stats["messages_sent"]
            assert sent <= ceiling, (
                f"{protocol} f={faults}: fig6 traffic regressed to "
                f"{sent:.0f} messages (was ~{measured}, ceiling {ceiling})"
            )
            # Sanity floor: the run must actually exercise the workload.
            assert sent > measured * 0.5

    def test_fig6_commit_requests_stay_debounced(self):
        stats = run_fig6_row("tempo", 1)
        assert stats.get("sent:MCommitRequest", 0.0) < 1_300

    def test_fig6_promise_messages_stay_bounded(self):
        """Promise-broadcast traffic gate (range-native pipeline).

        The contended tempo run sent ~1 450 MPromises at seed 1; the range
        encoding must not change the count (ranges change the *encoding*,
        not the broadcast cadence), so a jump past the ceiling means the
        promise pipeline regressed (e.g. per-promise messages are back).
        """
        stats = run_fig6_row("tempo", 1)
        promises = stats.get("sent:MPromises", 0.0)
        assert 700 < promises < 1_850, f"MPromises count drifted: {promises:.0f}"

    def test_fig6_scheduler_columns_are_recorded(self):
        """The experiment stats must expose the event-loop cost columns
        (``events``, ``heap_ops``) that feed ``BENCH_fig6.json``, and the
        timestamp-lane scheduler must do measurably less heap work than the
        one-heap-op-per-event flat heap (2 ops/event) it replaced."""
        stats = run_fig6_row("tempo", 1)
        events = stats.get("events", 0.0)
        heap_ops = stats.get("heap_ops", 0.0)
        assert events > 5_000
        assert 0 < heap_ops < 1.6 * events, (
            f"scheduler win regressed: {heap_ops:.0f} heap ops for "
            f"{events:.0f} events (flat heap would pay ~{2 * events:.0f})"
        )

    def test_fig6_single_partition_sends_no_stable_messages(self):
        """Single-partition MStable notifications are self-addressed only
        (same-partition peers derive stability locally); any network MStable
        here means the notification slimming silently regressed."""
        stats = run_fig6_row("tempo", 1)
        assert stats.get("sent:MStable", 0.0) == 0
