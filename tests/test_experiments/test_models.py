"""Tests for the throughput (resource) and latency models."""

from __future__ import annotations

import pytest

from repro.core.config import ProtocolConfig
from repro.experiments.latency_model import (
    average_latency,
    fpaxos_site_latency,
    leaderless_site_latency,
    load_curve,
    per_site_latency,
    queueing_latency,
)
from repro.experiments.throughput_model import (
    CostModel,
    max_throughput,
    protocol_costs,
    utilization_heatmap,
)
from repro.simulator.resources import CommandCost, MachineSpec, ResourceModel
from repro.workloads.batching import BatchingModel

CFG_F1 = ProtocolConfig(num_processes=5, faults=1)
CFG_F2 = ProtocolConfig(num_processes=5, faults=2)


class TestResourceModel:
    def test_saturation_picks_the_scarcest_resource(self):
        model = ResourceModel(MachineSpec(cores=1, nic_bandwidth_bytes_per_second=1e9))
        cost = CommandCost(cpu_micros=10.0, execution_micros=1.0,
                           net_in_bytes=100.0, net_out_bytes=100.0)
        saturation = model.saturation(cost)
        assert saturation.bottleneck == "cpu"
        assert saturation.max_commands_per_second == pytest.approx(100_000.0)

    def test_nic_bound_workload(self):
        model = ResourceModel(MachineSpec(cores=64, nic_bandwidth_bytes_per_second=1e6))
        cost = CommandCost(cpu_micros=1.0, execution_micros=0.5,
                           net_in_bytes=10.0, net_out_bytes=1_000.0)
        assert model.saturation(cost).bottleneck == "net_out"

    def test_zero_cost_is_rejected(self):
        model = ResourceModel(MachineSpec())
        with pytest.raises(ValueError):
            model.saturation(CommandCost(0.0, 0.0, 0.0, 0.0))

    def test_utilization_at_a_given_rate(self):
        model = ResourceModel(MachineSpec(cores=2))
        cost = CommandCost(cpu_micros=10.0, execution_micros=5.0,
                           net_in_bytes=1.0, net_out_bytes=1.0)
        utilization = model.utilization(cost, rate=100_000.0)
        assert utilization["cpu"] == pytest.approx(0.5)
        assert utilization["execution"] == pytest.approx(0.5)


class TestThroughputModel:
    def test_figure7_ordering_tempo_beats_atlas_beats_fpaxos(self):
        tempo = max_throughput("tempo", CFG_F1)["max_ops_per_second"]
        atlas = max_throughput("atlas", CFG_F1)["max_ops_per_second"]
        fpaxos = max_throughput("fpaxos", CFG_F1)["max_ops_per_second"]
        assert tempo > atlas > fpaxos
        assert tempo / atlas > 1.5
        assert tempo / fpaxos > 3.0

    def test_tempo_is_contention_and_fault_insensitive(self):
        low = max_throughput("tempo", CFG_F1, conflict_rate=0.02)
        high = max_throughput("tempo", CFG_F1, conflict_rate=0.10)
        f2 = max_throughput("tempo", CFG_F2, conflict_rate=0.02)
        assert low["max_ops_per_second"] == pytest.approx(high["max_ops_per_second"])
        assert abs(low["max_ops_per_second"] - f2["max_ops_per_second"]) < 0.15 * low[
            "max_ops_per_second"
        ]

    def test_dependency_protocols_degrade_with_contention(self):
        atlas_low = max_throughput("atlas", CFG_F1, conflict_rate=0.02)
        atlas_high = max_throughput("atlas", CFG_F1, conflict_rate=0.10)
        assert atlas_high["max_ops_per_second"] < atlas_low["max_ops_per_second"]
        caesar_low = max_throughput("caesar", CFG_F1, conflict_rate=0.02)
        caesar_high = max_throughput("caesar", CFG_F1, conflict_rate=0.10)
        assert caesar_high["max_ops_per_second"] < 0.5 * caesar_low["max_ops_per_second"]

    def test_fpaxos_bottleneck_is_at_the_leader(self):
        result = max_throughput("fpaxos", CFG_F1, payload=4096.0)
        assert result["bottleneck"] in ("net_out", "execution")

    def test_batching_amortizes_protocol_costs(self):
        off = max_throughput("fpaxos", CFG_F1, payload=256.0)
        on = max_throughput("fpaxos", CFG_F1, payload=256.0, batching=BatchingModel(True))
        assert on["max_ops_per_second"] > 2.5 * off["max_ops_per_second"]

    def test_reads_reduce_dependency_costs(self):
        writes = max_throughput("janus", CFG_F1, conflict_rate=0.10, write_ratio=1.0)
        reads = max_throughput("janus", CFG_F1, conflict_rate=0.10, write_ratio=0.0)
        assert reads["max_ops_per_second"] >= writes["max_ops_per_second"]

    def test_partial_replication_scaling_is_genuine_for_tempo_only(self):
        tempo_2 = max_throughput("tempo", CFG_F1, num_shards=2)
        tempo_6 = max_throughput("tempo", CFG_F1, num_shards=6)
        assert tempo_6["max_ops_per_second"] == pytest.approx(
            3 * tempo_2["max_ops_per_second"] / 1.0, rel=0.01
        )
        atlas_2 = max_throughput("atlas", CFG_F1, num_shards=2)
        atlas_6 = max_throughput("atlas", CFG_F1, num_shards=6)
        assert atlas_6["max_ops_per_second"] < 3 * atlas_2["max_ops_per_second"]

    def test_unknown_protocol_raises(self):
        with pytest.raises(KeyError):
            protocol_costs("raft", CFG_F1, 100.0, CostModel())

    def test_heatmap_rows_have_utilization_percentages(self):
        rows = utilization_heatmap(["tempo", "fpaxos", "atlas"], config=CFG_F1)
        assert {row["protocol"] for row in rows} == {"tempo", "fpaxos", "atlas"}
        for row in rows:
            for field in ("cpu", "execution", "net_out"):
                assert 0.0 <= float(row[field]) <= 100.0


class TestLatencyModel:
    def test_leaderless_latency_equals_fast_quorum_rtt(self):
        assert leaderless_site_latency("ireland", 3) == pytest.approx(141.0)
        assert leaderless_site_latency("canada", 3) == pytest.approx(78.0)

    def test_fpaxos_latency_from_leader_and_remote_sites(self):
        leader_site = fpaxos_site_latency("ireland", "ireland", 2)
        remote_site = fpaxos_site_latency("singapore", "ireland", 2)
        assert leader_site < remote_site
        assert leader_site == pytest.approx(72.0 + 1.0, abs=2.0)

    def test_per_site_latency_average_matches_figure5_scale(self):
        tempo = per_site_latency("tempo", 5, 1)
        assert 120.0 <= average_latency(tempo) <= 170.0
        fpaxos = per_site_latency("fpaxos", 5, 1)
        assert max(fpaxos.values()) / min(fpaxos.values()) > 2.5

    def test_epaxos_uses_larger_quorums_than_atlas(self):
        atlas = average_latency(per_site_latency("atlas", 5, 1))
        epaxos = average_latency(per_site_latency("epaxos", 5, 1))
        assert epaxos >= atlas

    def test_queueing_latency_grows_with_load(self):
        base = 100.0
        assert queueing_latency(base, 10.0, 1000.0) < queueing_latency(base, 990.0, 1000.0)

    def test_load_curve_is_monotone_in_throughput_and_latency(self):
        points = load_curve([32, 128, 512, 2048, 8192], 5, 150.0, 100_000.0)
        throughputs = [point["throughput_ops"] for point in points]
        latencies = [point["latency_ms"] for point in points]
        assert throughputs == sorted(throughputs)
        assert latencies == sorted(latencies)
        assert throughputs[-1] <= 100_000.0

    def test_unknown_protocol_raises(self):
        with pytest.raises(KeyError):
            per_site_latency("raft", 5, 1)


class TestMBatchFramingModel:
    """The transport-level MBatch framing saving in the analytic model."""

    def test_default_coalescing_changes_nothing(self):
        from repro.experiments.throughput_model import CostModel

        model = CostModel()
        assert model.small_wire_bytes() == model.small_message_bytes
        baseline = max_throughput("tempo", payload=4096.0)
        explicit = max_throughput("tempo", payload=4096.0, model=CostModel())
        assert baseline == explicit

    def test_coalescing_amortises_framing_only(self):
        from repro.experiments.throughput_model import CostModel

        model = CostModel(mbatch_coalescing=4.0)
        saved = model.small_message_bytes - model.small_wire_bytes()
        assert 0 < saved < model.framing_bytes
        assert model.small_wire_bytes() == (
            model.small_message_bytes
            - model.framing_bytes
            + model.framing_bytes / 4.0
        )

    def test_coalescing_never_hurts_throughput(self):
        from repro.experiments.throughput_model import CostModel

        for protocol in ("tempo", "fpaxos", "atlas", "caesar"):
            unbatched = max_throughput(protocol, payload=256.0)
            coalesced = max_throughput(
                protocol, payload=256.0, model=CostModel(mbatch_coalescing=4.0)
            )
            assert (
                coalesced["max_ops_per_second"]
                >= unbatched["max_ops_per_second"]
            ), protocol

    def test_invalid_coalescing_and_framing_rejected(self):
        import pytest

        from repro.experiments.throughput_model import CostModel

        with pytest.raises(ValueError):
            CostModel(mbatch_coalescing=0.5)
        with pytest.raises(ValueError):
            CostModel(framing_bytes=1_000.0)

    def test_fig8_mbatch_rows_report_a_gain_at_small_payloads(self):
        from repro.experiments.fig8_batching import run_mbatch

        rows = run_mbatch(coalescing=4.0)
        by_key = {
            (str(row["protocol"]), int(row["payload_bytes"])): row for row in rows
        }
        # Framing amortisation helps most where payloads are small and the
        # NIC budget is dominated by per-message overhead.
        small = by_key[("fpaxos f=1", 256)]
        assert float(small["gain"]) >= 1.0
        large = by_key[("fpaxos f=1", 4096)]
        assert float(small["gain"]) >= float(large["gain"])


class TestMeasuredCoalescing:
    """Deriving ``mbatch_coalescing`` from the simulator's measured
    messages-per-delivery ratio (ROADMAP: close the loop between the
    fig5/fig6 runs and the fig7/fig8 analytic model)."""

    def test_measured_coalescing_is_messages_per_delivery(self):
        from repro.experiments.throughput_model import measured_coalescing

        stats = {"messages_delivered": 120.0, "deliveries": 40.0}
        assert measured_coalescing(stats) == pytest.approx(3.0)

    def test_degenerate_stats_fall_back_to_per_message_framing(self):
        from repro.experiments.throughput_model import measured_coalescing

        assert measured_coalescing({}) == 1.0
        assert measured_coalescing({"messages_delivered": 5.0}) == 1.0
        assert (
            measured_coalescing({"messages_delivered": 3.0, "deliveries": 4.0})
            == 1.0
        )

    def test_model_with_measured_coalescing_keeps_other_constants(self):
        from repro.experiments.throughput_model import (
            CostModel,
            model_with_measured_coalescing,
        )

        model = model_with_measured_coalescing(
            {"messages_delivered": 90.0, "deliveries": 30.0}
        )
        assert model.mbatch_coalescing == pytest.approx(3.0)
        assert model.small_message_bytes == CostModel().small_message_bytes

    def test_simulator_deliveries_feed_the_model(self):
        """End to end: a short simulator run exposes ``deliveries`` and its
        measured coalescing plugs into the fig8 MBatch companion rows."""
        from repro.cluster.config import ExperimentConfig
        from repro.cluster.runner import run_experiment
        from repro.experiments.fig8_batching import run_mbatch_measured
        from repro.experiments.throughput_model import measured_coalescing

        config = ExperimentConfig(
            protocol="tempo",
            clients_per_site=4,
            conflict_rate=0.15,
            duration_ms=800.0,
            warmup_ms=200.0,
            seed=1,
        )
        stats = run_experiment(config).stats
        assert stats["deliveries"] > 0
        assert stats["messages_delivered"] >= stats["deliveries"]
        coalescing = measured_coalescing(stats)
        assert coalescing > 1.0  # tempo's contended path does coalesce

        rows = run_mbatch_measured(experiment_config=config)
        assert rows
        for row in rows:
            assert float(row["measured_coalescing"]) == pytest.approx(
                round(coalescing, 2)
            )
            assert float(row["gain"]) >= 1.0
