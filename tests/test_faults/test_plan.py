"""Unit tests for the declarative fault-plan schema and its injector.

The plan layer is pure validation + ordering; the injector tests drive
``FaultInjector.install`` against a recording stub so every event kind's
compilation (crash -> first-class CRASH event, window events -> paired
FAULT events, rank -> site-name/process-id resolution) is pinned without
spinning up a simulation.
"""

from __future__ import annotations

import pytest

from repro.faults import (
    Crash,
    FaultInjector,
    FaultPlan,
    FlakyLink,
    Partition,
    Restart,
    TargetedLoss,
)

SITES = ["ireland", "canada", "singapore"]


class TestEventValidation:
    def test_crash_rejects_bad_coordinates(self):
        with pytest.raises(ValueError):
            Crash(at_ms=0.0, site_rank=0).validate(3, 1)
        with pytest.raises(ValueError):
            Crash(at_ms=100.0, site_rank=3).validate(3, 1)
        with pytest.raises(ValueError):
            Crash(at_ms=100.0, site_rank=0, shard=1).validate(3, 1)
        Crash(at_ms=100.0, site_rank=2, shard=1).validate(3, 2)

    def test_restart_rejects_bad_coordinates(self):
        with pytest.raises(ValueError):
            Restart(at_ms=-1.0, site_rank=0).validate(3, 1)
        with pytest.raises(ValueError):
            Restart(at_ms=100.0, site_rank=5).validate(3, 1)

    def test_partition_needs_two_disjoint_groups_and_a_later_heal(self):
        Partition(at_ms=100.0, heal_at_ms=200.0, groups=[(0,), (1, 2)]).validate(3, 1)
        with pytest.raises(ValueError):
            Partition(at_ms=100.0, heal_at_ms=100.0, groups=[(0,), (1,)]).validate(3, 1)
        with pytest.raises(ValueError):
            Partition(at_ms=100.0, heal_at_ms=200.0, groups=[(0, 1, 2)]).validate(3, 1)
        with pytest.raises(ValueError):
            # rank 1 appears in two groups
            Partition(at_ms=100.0, heal_at_ms=200.0, groups=[(0, 1), (1, 2)]).validate(3, 1)
        with pytest.raises(ValueError):
            Partition(at_ms=100.0, heal_at_ms=200.0, groups=[(0,), (7,)]).validate(3, 1)

    def test_flaky_link_must_degrade_something(self):
        with pytest.raises(ValueError):
            FlakyLink(at_ms=100.0, until_ms=200.0).validate(3, 1)
        FlakyLink(at_ms=100.0, until_ms=200.0, drop_probability=0.1).validate(3, 1)

    def test_flaky_link_site_selection_rules(self):
        with pytest.raises(ValueError):
            # site_b without site_a is meaningless
            FlakyLink(at_ms=100.0, until_ms=200.0, site_b=1, extra_delay_ms=1.0).validate(3, 1)
        with pytest.raises(ValueError):
            FlakyLink(
                at_ms=100.0, until_ms=200.0, site_a=1, site_b=1, extra_delay_ms=1.0
            ).validate(3, 1)
        with pytest.raises(ValueError):
            FlakyLink(
                at_ms=100.0, until_ms=50.0, site_a=0, site_b=1, extra_delay_ms=1.0
            ).validate(3, 1)
        FlakyLink(at_ms=100.0, until_ms=200.0, site_a=0, extra_delay_ms=1.0).validate(3, 1)

    def test_targeted_loss_validation(self):
        with pytest.raises(ValueError):
            TargetedLoss(at_ms=100.0, until_ms=200.0, kind="").validate(3, 1)
        with pytest.raises(ValueError):
            TargetedLoss(at_ms=100.0, until_ms=200.0, kind="MStable", probability=0.0).validate(3, 1)
        with pytest.raises(ValueError):
            # cross-shard loss needs a sharded deployment
            TargetedLoss(
                at_ms=100.0, until_ms=200.0, kind="MStable", cross_shard_only=True
            ).validate(3, 1)
        TargetedLoss(
            at_ms=100.0, until_ms=200.0, kind="MStable", cross_shard_only=True
        ).validate(3, 2)


class TestFaultPlan:
    def test_events_are_sorted_by_activation_time(self):
        plan = FaultPlan(
            [
                FlakyLink(at_ms=300.0, until_ms=400.0, drop_probability=0.5),
                Crash(at_ms=100.0, site_rank=0),
            ]
        )
        assert [event.at_ms for event in plan] == [100.0, 300.0]
        assert len(plan) == 2

    def test_validate_rejects_non_events(self):
        with pytest.raises(TypeError):
            FaultPlan(["crash at 100"]).validate(3, 1)  # type: ignore[list-item]

    def test_from_legacy_crash_compiles_one_event(self):
        plan = FaultPlan.from_legacy_crash(1, 0, 800.0)
        assert len(plan) == 1
        (event,) = plan
        assert event == Crash(at_ms=800.0, site_rank=1, shard=0)


class _RecordingNetwork:
    def __init__(self):
        self.calls = []

    def __getattr__(self, name):
        def record(*args, **kwargs):
            self.calls.append((name, args, kwargs))

        return record


class _RecordingSimulation:
    """Duck-typed stand-in for Simulation: records scheduled fault events."""

    def __init__(self):
        self.network = _RecordingNetwork()
        self.crashes = []
        self.faults = []
        self.restarts = []

    def crash_at(self, at_ms, process_id):
        self.crashes.append((at_ms, process_id))

    def fault_at(self, at_ms, action):
        self.faults.append((at_ms, action))

    def restart(self, process_id):
        self.restarts.append(process_id)

    def run_faults(self):
        for _, action in self.faults:
            action(self)


def make_injector(plan, num_shards=1):
    # Process ids laid out shard-major, matching the cluster deployment.
    return FaultInjector(
        plan,
        SITES,
        lambda site_rank, shard: shard * len(SITES) + site_rank,
        num_shards=num_shards,
    )


class TestFaultInjector:
    def test_crash_compiles_to_first_class_crash_event(self):
        simulation = _RecordingSimulation()
        make_injector(FaultPlan([Crash(at_ms=800.0, site_rank=2)])).install(simulation)
        assert simulation.crashes == [(800.0, 2)]
        assert simulation.faults == []

    def test_restart_resolves_the_replica_coordinate(self):
        simulation = _RecordingSimulation()
        make_injector(
            FaultPlan([Restart(at_ms=900.0, site_rank=1, shard=1)]), num_shards=2
        ).install(simulation)
        assert [at for at, _ in simulation.faults] == [900.0]
        simulation.run_faults()
        assert simulation.restarts == [4]  # shard 1, rank 1 -> 1 * 3 + 1

    def test_partition_schedules_set_and_heal(self):
        simulation = _RecordingSimulation()
        make_injector(
            FaultPlan([Partition(at_ms=800.0, heal_at_ms=1400.0, groups=[(0,), (1, 2)])])
        ).install(simulation)
        assert [at for at, _ in simulation.faults] == [800.0, 1400.0]
        simulation.run_faults()
        assert simulation.network.calls == [
            ("set_partition", ((("ireland",), ("canada", "singapore")),), {}),
            ("clear_partition", (), {}),
        ]

    def test_flaky_link_degrades_every_link_of_a_site_then_restores(self):
        simulation = _RecordingSimulation()
        make_injector(
            FaultPlan(
                [FlakyLink(at_ms=800.0, until_ms=1700.0, site_a=0, drop_probability=0.05)]
            )
        ).install(simulation)
        simulation.run_faults()
        names = [name for name, _, _ in simulation.network.calls]
        assert names == ["degrade_link"] * 2 + ["restore_link"] * 2
        degraded = {args[:2] for name, args, _ in simulation.network.calls if name == "degrade_link"}
        assert degraded == {("ireland", "canada"), ("ireland", "singapore")}

    def test_targeted_loss_tags_shards_and_schedules_the_window(self):
        simulation = _RecordingSimulation()
        make_injector(
            FaultPlan(
                [
                    TargetedLoss(
                        at_ms=800.0,
                        until_ms=1400.0,
                        kind="MStable",
                        cross_shard_only=True,
                    )
                ]
            ),
            num_shards=2,
        ).install(simulation)
        # All six replicas tagged with their shard before any window opens.
        tags = [
            args for name, args, _ in simulation.network.calls if name == "set_group"
        ]
        assert sorted(tags) == [(0, 0), (1, 0), (2, 0), (3, 1), (4, 1), (5, 1)]
        simulation.run_faults()
        names = [name for name, _, _ in simulation.network.calls]
        assert names[-2:] == ["set_targeted_loss", "clear_targeted_loss"]

    def test_install_validates_against_the_deployment_shape(self):
        with pytest.raises(ValueError):
            make_injector(FaultPlan([Crash(at_ms=800.0, site_rank=9)]))
