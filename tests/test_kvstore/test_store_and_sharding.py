"""Tests for the key-value store and the shard map."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.commands import Command
from repro.core.identifiers import Dot
from repro.kvstore.sharding import ShardMap
from repro.kvstore.store import KeyValueStore


class TestKeyValueStore:
    def test_write_then_read(self):
        store = KeyValueStore()
        store.apply(Command.write(Dot(0, 1), ["k"]))
        result = store.apply(Command.read(Dot(0, 2), ["k"]))
        assert result["k"] == str(Dot(0, 1))

    def test_read_of_absent_key_returns_none(self):
        store = KeyValueStore()
        result = store.apply(Command.read(Dot(0, 1), ["missing"]))
        assert result["missing"] is None

    def test_duplicate_application_is_rejected(self):
        store = KeyValueStore()
        command = Command.write(Dot(0, 1), ["k"])
        store.apply(command)
        with pytest.raises(ValueError):
            store.apply(command)

    def test_applied_commands_preserve_order(self):
        store = KeyValueStore()
        dots = [Dot(0, index) for index in range(1, 6)]
        for dot in dots:
            store.apply(Command.write(dot, ["k"]))
        assert store.applied_commands() == tuple(dots)

    def test_writes_per_key_counted(self):
        store = KeyValueStore()
        store.apply(Command.write(Dot(0, 1), ["a", "b"]))
        store.apply(Command.write(Dot(0, 2), ["a"]))
        assert store.writes_to("a") == 2
        assert store.writes_to("b") == 1
        assert store.writes_to("c") == 0

    def test_snapshot_is_a_copy(self):
        store = KeyValueStore()
        store.apply(Command.write(Dot(0, 1), ["k"]))
        snapshot = store.snapshot()
        snapshot["k"] = "tampered"
        assert store.get("k") != "tampered"

    def test_len_counts_keys(self):
        store = KeyValueStore()
        store.apply(Command.write(Dot(0, 1), ["a", "b", "c"]))
        assert len(store) == 3

    @given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=30))
    def test_last_writer_wins_per_key(self, keys):
        store = KeyValueStore()
        last = {}
        for index, key in enumerate(keys, start=1):
            command = Command.write(Dot(0, index), [key])
            store.apply(command)
            last[key] = str(command.dot)
        for key, value in last.items():
            assert store.get(key) == value


class TestShardMap:
    def test_numeric_keys_round_robin(self):
        shards = ShardMap(4)
        assert shards.shard_of_key("user8") == 0
        assert shards.shard_of_key("user9") == 1
        assert shards.shard_of_key("user10") == 2
        assert shards.shard_of_key("user11") == 3

    def test_key_for_is_inverse_of_shard_of_key(self):
        shards = ShardMap(6, keys_per_shard=100)
        for shard in range(6):
            for index in (0, 5, 99):
                key = shards.key_for(shard, index)
                assert shards.shard_of_key(key) == shard

    def test_total_keys(self):
        assert ShardMap(2, keys_per_shard=1000).total_keys() == 2000

    def test_distribution_is_roughly_uniform_for_sequential_keys(self):
        shards = ShardMap(4)
        keys = [f"user{index}" for index in range(400)]
        histogram = shards.distribution(keys)
        assert all(count == 100 for count in histogram.values())

    def test_partitioner_adapter(self):
        shards = ShardMap(3)
        partitioner = shards.partitioner()
        assert partitioner.num_partitions == 3
        assert partitioner.partition_of("user4") == shards.shard_of_key("user4")

    def test_shards_of_keys(self):
        shards = ShardMap(4)
        assert shards.shards_of(["user0", "user1", "user4"]) == [0, 1]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ShardMap(0)
        shards = ShardMap(2, keys_per_shard=10)
        with pytest.raises(ValueError):
            shards.key_for(5, 0)
        with pytest.raises(ValueError):
            shards.key_for(0, 100)

    def test_non_numeric_keys_are_hashed_stably(self):
        shards = ShardMap(5)
        assert shards.shard_of_key("alpha") == shards.shard_of_key("alpha")
        assert 0 <= shards.shard_of_key("alpha") < 5
