"""Tests for latency histograms, throughput tracking and report rendering."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.metrics.histogram import LatencyHistogram, nearest_rank
from repro.metrics.report import ExperimentReport, format_table
from repro.metrics.throughput import ThroughputTracker


class TestLatencyHistogram:
    def test_mean_min_max(self):
        histogram = LatencyHistogram([10.0, 20.0, 30.0])
        assert histogram.mean() == 20.0
        assert histogram.minimum() == 10.0
        assert histogram.maximum() == 30.0

    def test_percentiles_nearest_rank(self):
        histogram = LatencyHistogram(float(value) for value in range(1, 101))
        assert histogram.percentile(50.0) == 50.0
        assert histogram.percentile(95.0) == 95.0
        assert histogram.percentile(99.0) == 99.0
        assert histogram.percentile(100.0) == 100.0

    def test_percentile_of_small_sample(self):
        histogram = LatencyHistogram([5.0])
        assert histogram.percentile(99.99) == 5.0

    def test_empty_histogram_reports_zeros(self):
        histogram = LatencyHistogram()
        assert histogram.mean() == 0.0
        assert histogram.percentile(99.0) == 0.0
        assert histogram.is_empty()

    def test_merge(self):
        left = LatencyHistogram([1.0, 2.0])
        right = LatencyHistogram([3.0])
        left.merge(right)
        assert len(left) == 3
        assert left.maximum() == 3.0

    def test_negative_samples_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().record(-1.0)

    def test_invalid_percentile_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram([1.0]).percentile(0.0)

    def test_summary_keys(self):
        summary = LatencyHistogram([1.0, 2.0, 3.0]).summary()
        assert set(summary) == {
            "count", "mean", "p50", "p95", "p99", "p99.9", "p99.99", "max",
        }

    def test_figure6_percentiles_batch(self):
        histogram = LatencyHistogram(float(value) for value in range(1, 1001))
        batch = histogram.percentiles((95.0, 97.0, 99.0, 99.9, 99.99))
        assert batch[95.0] == 950.0
        assert batch[99.9] == 999.0

    def test_nearest_rank_is_immune_to_float_error(self):
        # 99.9 / 100 * 1000 evaluates to 999.0000000000001; a plain ceil
        # would round the rank up to 1000.
        assert nearest_rank(99.9, 1000) == 999
        assert nearest_rank(95.0, 1000) == 950
        assert nearest_rank(99.99, 1000) == 1000
        assert nearest_rank(100.0, 7) == 7
        assert nearest_rank(0.01, 1) == 1
        # Non-integral exact ranks still round up.
        assert nearest_rank(50.0, 3) == 2

    def test_streaming_aggregates_match_samples_without_sorting(self):
        histogram = LatencyHistogram()
        for value in (5.0, 1.0, 9.0, 3.0):
            histogram.record(value)
        # Min/max/mean are maintained incrementally: the sample list is
        # untouched (still unsorted) until a percentile query needs it.
        assert histogram.minimum() == 1.0
        assert histogram.maximum() == 9.0
        assert histogram.mean() == 4.5
        assert histogram._samples == [5.0, 1.0, 9.0, 3.0]
        assert histogram.percentile(100.0) == 9.0

    def test_merge_keeps_streaming_aggregates(self):
        left = LatencyHistogram([2.0, 8.0])
        right = LatencyHistogram([1.0, 16.0])
        left.merge(right)
        assert left.minimum() == 1.0
        assert left.maximum() == 16.0
        assert left.mean() == 6.75
        left.merge(LatencyHistogram())
        assert left.minimum() == 1.0

    @given(st.lists(st.floats(min_value=0, max_value=1e5), min_size=1, max_size=300))
    def test_percentiles_are_monotone_and_bounded(self, samples):
        histogram = LatencyHistogram(samples)
        p50 = histogram.percentile(50.0)
        p95 = histogram.percentile(95.0)
        p999 = histogram.percentile(99.9)
        assert p50 <= p95 <= p999 <= histogram.maximum()
        assert histogram.minimum() <= p50


class TestThroughputTracker:
    def test_ops_per_second(self):
        tracker = ThroughputTracker()
        for index in range(11):
            tracker.record(float(index * 100))
        assert tracker.completed == 11
        assert tracker.ops_per_second() == pytest.approx(10.0 / 1.0)

    def test_warmup_excludes_early_samples(self):
        tracker = ThroughputTracker(warmup_ms=500.0)
        tracker.record(100.0)
        tracker.record(600.0)
        tracker.record(700.0)
        assert tracker.completed == 2
        assert tracker.ignored == 1

    def test_per_site_counts(self):
        tracker = ThroughputTracker()
        tracker.record(10.0, "ireland")
        tracker.record(20.0, "ireland")
        tracker.record(30.0, "canada")
        assert tracker.per_site == {"ireland": 2, "canada": 1}
        per_site = tracker.ops_per_second_per_site()
        assert per_site["ireland"] == pytest.approx(2 / 0.02)

    def test_too_few_samples_give_zero_rate(self):
        tracker = ThroughputTracker()
        tracker.record(5.0)
        assert tracker.ops_per_second() == 0.0


class TestReport:
    def test_row_contains_summary_fields(self):
        report = ExperimentReport(
            name="fig5", protocol="tempo", parameters={"f": 1},
            latency=LatencyHistogram([10.0, 20.0]), throughput_ops=1234.5,
        )
        row = report.row()
        assert row["protocol"] == "tempo"
        assert row["f"] == 1
        assert row["mean_ms"] == 15.0
        assert row["throughput_ops"] == 1234.5

    def test_site_means(self):
        report = ExperimentReport(
            name="fig5", protocol="tempo",
            per_site_latency={"ireland": LatencyHistogram([10.0, 30.0])},
        )
        assert report.site_means() == {"ireland": 20.0}

    def test_format_table_aligns_columns(self):
        rows = [
            {"protocol": "tempo", "mean": 1.0},
            {"protocol": "fpaxos-with-a-long-name", "mean": 123456.0},
        ]
        table = format_table(rows, title="demo")
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "protocol" in lines[1]
        assert len(lines) == 5
        # All data lines are equally wide.
        assert len(lines[3]) == len(lines[4])

    def test_format_table_with_explicit_columns(self):
        rows = [{"a": 1, "b": 2}]
        table = format_table(rows, columns=["b"])
        assert "a" not in table.splitlines()[0]

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")
