"""Shared fixtures for the protocol test suite."""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest

from repro.core.commands import Partitioner
from repro.core.config import ProtocolConfig
from repro.kvstore.store import KeyValueStore
from repro.protocols.registry import build_process
from repro.simulator.inline import InlineNetwork


class ProtocolCluster:
    """A full-replication cluster of one protocol on an inline network."""

    def __init__(self, protocol: str, r: int = 5, f: int = 1, **kwargs) -> None:
        self.protocol = protocol
        self.config = ProtocolConfig(num_processes=r, faults=f)
        self.partitioner = Partitioner(1)
        self.stores: Dict[int, KeyValueStore] = {}
        self.processes: List = []
        for process_id in range(r):
            store = KeyValueStore()
            self.stores[process_id] = store
            self.processes.append(
                build_process(
                    protocol,
                    process_id,
                    self.config,
                    partitioner=self.partitioner,
                    apply_fn=store.apply,
                    **kwargs,
                )
            )
        self.network = InlineNetwork(self.processes)

    def submit(self, process_id: int, keys, read_only: bool = False):
        process = self.processes[process_id]
        if read_only and hasattr(process, "new_command"):
            try:
                command = process.new_command(keys, read_only=True)
            except TypeError:
                command = process.new_command(keys)
        else:
            command = process.new_command(keys)
        process.submit(command, 0.0)
        return command

    def settle(self, rounds: int = 15) -> None:
        self.network.settle(rounds=rounds)

    def step(self) -> int:
        return self.network.step(0.0)

    def executed_everywhere(self, command) -> bool:
        return all(
            command.dot in process.executed_dots() for process in self.processes
        )

    def consistent_order(self, commands) -> bool:
        dots = {command.dot for command in commands}
        orders = {
            tuple(dot for dot in process.executed_dots() if dot in dots)
            for process in self.processes
        }
        return len(orders) == 1

    def stores_converged(self) -> bool:
        snapshots = {
            tuple(sorted(store.snapshot().items())) for store in self.stores.values()
        }
        return len(snapshots) == 1


@pytest.fixture
def make_cluster():
    return ProtocolCluster
