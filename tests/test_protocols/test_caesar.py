"""Tests for the Caesar baseline (timestamps + dependencies + wait condition)."""

from __future__ import annotations

from repro.simulator.inline import RecordingNetwork


class TestBasics:
    def test_unique_timestamps(self, make_cluster):
        cluster = make_cluster("caesar")
        commands = [cluster.submit(i % 5, ["hot"]) for i in range(8)]
        cluster.settle(rounds=25)
        reference = cluster.processes[0]
        timestamps = [reference._info[c.dot].timestamp for c in commands]
        assert len(set(timestamps)) == len(timestamps)

    def test_fast_quorum_is_three_quarters_rounded_up(self, make_cluster):
        cluster = make_cluster("caesar", r=5, f=1)
        assert len(cluster.processes[0]._fast_quorum()) == 4

    def test_commands_execute_everywhere_in_timestamp_order(self, make_cluster):
        cluster = make_cluster("caesar")
        commands = [cluster.submit(i % 5, ["hot"]) for i in range(8)]
        cluster.settle(rounds=30)
        for command in commands:
            assert cluster.executed_everywhere(command)
        assert cluster.consistent_order(commands)

    def test_non_conflicting_commands_commit_without_blocking(self, make_cluster):
        cluster = make_cluster("caesar")
        cluster.submit(0, ["a"])
        cluster.submit(1, ["b"])
        cluster.settle()
        assert cluster.processes[0].blocked_replies_ever == 0

    def test_stores_converge(self, make_cluster):
        cluster = make_cluster("caesar")
        for index in range(9):
            cluster.submit(index % 5, ["hot" if index % 2 else f"k{index}"])
        cluster.settle(rounds=30)
        assert cluster.stores_converged()


class TestWaitCondition:
    def test_reply_blocks_on_higher_timestamp_uncommitted_conflict(self, make_cluster):
        """A replica that knows a higher-timestamp, uncommitted conflicting
        command delays its reply (the §3.3 blocking behaviour)."""
        cluster = make_cluster("caesar", r=3, f=1)
        a, b, c = cluster.processes
        # b submits a conflicting command first (higher timestamp at b).
        cmd_b = b.new_command(["hot"])
        b.submit(cmd_b, 0.0)
        # a submits with a lower timestamp; deliver a's proposal to b before
        # b's command commits.
        cmd_a = a.new_command(["hot"])
        # Make a's timestamp smaller than b's by construction.
        a.clock = 0
        b.clock = 10
        a.submit(cmd_a, 0.0)
        from repro.protocols.dep_messages import MCaesarPropose

        info_a = a._info[cmd_a.dot]
        b.deliver(0, MCaesarPropose(cmd_a.dot, cmd_a, info_a.timestamp), 0.0)
        assert b.blocked_count() >= 1

    def test_blocked_reply_is_released_after_commit(self, make_cluster):
        cluster = make_cluster("caesar", r=3, f=1)
        for index in range(4):
            cluster.submit(index % 3, ["hot"])
        cluster.settle(rounds=30)
        # Everything eventually commits, so nothing stays blocked.
        for process in cluster.processes:
            assert process.blocked_count() == 0

    def test_blocking_is_recorded_under_contention(self, make_cluster):
        cluster = make_cluster("caesar", r=3, f=1)
        # Submit conflicting commands concurrently (no delivery in between):
        # each replica sees its own uncommitted higher-timestamp command when
        # the others' lower-timestamp proposals arrive, so replies block.
        for index in range(6):
            cluster.submit(index % 3, ["hot"])
        cluster.settle(rounds=30)
        blocked_total = sum(p.blocked_replies_ever for p in cluster.processes)
        assert blocked_total > 0

    def test_execution_waits_for_smaller_timestamp_dependencies(self, make_cluster):
        cluster = make_cluster("caesar", r=3, f=1, watermark_gc=False)
        first = cluster.submit(0, ["hot"])
        second = cluster.submit(1, ["hot"])
        cluster.settle(rounds=30)
        reference = cluster.processes[2]
        executed = [
            dot for dot in reference.executed_dots() if dot in (first.dot, second.dot)
        ]
        timestamps = {
            dot: reference._info[dot].timestamp for dot in (first.dot, second.dot)
        }
        assert executed == sorted(executed, key=lambda dot: timestamps[dot])
