"""Pruning semantics of the bounded conflict-tracking structures.

The dependency layer and Caesar prune executed/committed commands out of
their per-key live sets (``_conflicts`` / ``_known_per_key``) while keeping
an archive so emitted dependency sets still cover the full history.  These
tests pin down the three contracts of that scheme:

1. live sets shrink as commands execute (no monotonic growth; peak size
   bounded by in-flight commands),
2. emitted dependency sets are unchanged by pruning (the archive is
   unioned back in),
3. late (re)delivered messages referencing pruned dots are handled exactly
   as before pruning existed.
"""

from __future__ import annotations

from repro.cluster.config import ExperimentConfig
from repro.cluster.runner import run_experiment
from repro.protocols.dep_messages import (
    MCaesarPropose,
    MDepCommit,
    MPreAccept,
)


def drive_hot_key_traffic(cluster, count: int = 10, key: str = "hot"):
    """Submit ``count`` conflicting commands round-robin and settle."""
    commands = [cluster.submit(index % 5, [key]) for index in range(count)]
    cluster.settle(rounds=40)
    return commands


class TestDependencyPruning:
    def test_executed_commands_leave_the_live_sets(self, make_cluster):
        cluster = make_cluster("atlas", watermark_gc=False)
        commands = drive_hot_key_traffic(cluster)
        for process in cluster.processes:
            for command in commands:
                assert process.status_of(command.dot) == "execute"
            footprint = process.conflict_footprint()
            assert footprint["live"] == 0, footprint
            assert footprint["archived"] >= len(commands)
            # The live high-water mark stayed below the full history.
            assert footprint["peak_live"] <= len(commands)

    def test_emitted_dependencies_still_cover_pruned_history(self, make_cluster):
        """Pruning must not change what _conflicts_of computes: a new
        conflicting command still depends on the executed (pruned) ones."""
        cluster = make_cluster("atlas", watermark_gc=False)
        commands = drive_hot_key_traffic(cluster, count=6)
        follow_up = cluster.submit(0, ["hot"])
        cluster.settle(rounds=40)
        coordinator = cluster.processes[0]
        dependencies = coordinator.committed_dependencies(follow_up.dot)
        for command in commands:
            assert command.dot in dependencies

    def test_late_commit_redelivery_for_pruned_dot_is_ignored(self, make_cluster):
        cluster = make_cluster("atlas", watermark_gc=False)
        commands = drive_hot_key_traffic(cluster, count=4)
        target = cluster.processes[1]
        executed_before = len(target.executed)
        record = target.info(commands[0].dot)
        message = MDepCommit(
            commands[0].dot,
            record.command,
            record.dependencies,
            record.sequence,
            shard=0,
        )
        target.on_message(0, message, 999.0)
        assert len(target.executed) == executed_before
        assert target.conflict_footprint()["live"] == 0

    def test_late_preaccept_for_pruned_dot_is_ignored(self, make_cluster):
        cluster = make_cluster("atlas", watermark_gc=False)
        commands = drive_hot_key_traffic(cluster, count=4)
        target = cluster.processes[2]
        executed_before = len(target.executed)
        record = target.info(commands[1].dot)
        message = MPreAccept(commands[1].dot, record.command, frozenset(), 1)
        target.on_message(0, message, 999.0)
        assert len(target.executed) == executed_before
        assert target.conflict_footprint()["live"] == 0

    def test_preaccept_referencing_pruned_dependencies_recovers(self, make_cluster):
        """A fresh command whose carried dependencies mention executed
        (locally pruned) dots must still commit and execute."""
        cluster = make_cluster("atlas", watermark_gc=False)
        commands = drive_hot_key_traffic(cluster, count=4)
        follow_up = cluster.submit(3, ["hot"])
        cluster.settle(rounds=40)
        for process in cluster.processes:
            assert process.status_of(follow_up.dot) == "execute"
        assert cluster.consistent_order(commands + [follow_up])
        assert cluster.stores_converged()


class TestCaesarPruning:
    def test_committed_commands_leave_known_per_key(self, make_cluster):
        cluster = make_cluster("caesar", watermark_gc=False)
        commands = drive_hot_key_traffic(cluster)
        for process in cluster.processes:
            live = sum(len(bucket) for bucket in process._known_per_key.values())
            assert live == 0, process._known_per_key
            archived = sum(
                len(bucket) for bucket in process._committed_per_key.values()
            )
            assert archived >= len(commands)
            assert process.peak_live_per_key <= len(commands)

    def test_reply_dependencies_still_cover_pruned_history(self, make_cluster):
        cluster = make_cluster("caesar", watermark_gc=False)
        commands = drive_hot_key_traffic(cluster, count=6)
        follow_up = cluster.submit(0, ["hot"])
        cluster.settle(rounds=40)
        record = cluster.processes[0]._info[follow_up.dot]
        for command in commands:
            assert command.dot in record.dependencies

    def test_late_propose_for_committed_dot_is_ignored(self, make_cluster):
        cluster = make_cluster("caesar", watermark_gc=False)
        commands = drive_hot_key_traffic(cluster, count=4)
        target = cluster.processes[1]
        record = target._info[commands[0].dot]
        executed_before = len(target.executed)
        message = MCaesarPropose(commands[0].dot, record.command, (999, 0))
        target.on_message(0, message, 999.0)
        assert len(target.executed) == executed_before
        # The committed dot must not re-enter the live sets.
        live = sum(len(bucket) for bucket in target._known_per_key.values())
        assert live == 0


class TestBoundedUnderContention:
    """Peak live-set sizes stay bounded by in-flight commands under the
    fig6 contended workload — the structures no longer grow with history."""

    def run_contended(
        self, protocol: str, faults: int = 1, conflict_rate: float = 0.30,
        duration_ms: float = 2_000.0,
    ) -> tuple:
        config = ExperimentConfig(
            protocol=protocol,
            num_sites=5,
            faults=faults,
            clients_per_site=8,
            conflict_rate=conflict_rate,
            duration_ms=duration_ms,
            warmup_ms=300.0,
            seed=1,
            # Epoch-1 semantics under test: the archive keeps the whole
            # executed history.  With watermark GC on, the archive itself
            # is collected (tests/test_core/test_gc.py covers that).
            protocol_kwargs={"watermark_gc": False},
        )
        result = run_experiment(config)
        return config, result

    def test_dependency_live_sets_bounded_by_in_flight(self):
        config, result = self.run_contended("atlas")
        in_flight_bound = config.total_clients()
        assert result.completed > 300
        for process in result.deployment.processes:
            footprint = process.conflict_footprint()
            # Closed-loop clients each keep one command in flight; the live
            # window additionally covers commands committed elsewhere but
            # not yet executed here, hence the slack factor.
            assert footprint["peak_live"] <= 2 * in_flight_bound, footprint
            # The executed history dwarfs the live window: growth went to
            # the archive, not to the scanned-per-command live sets.
            assert footprint["archived"] > 3 * footprint["peak_live"], footprint

    def test_caesar_live_sets_bounded_by_in_flight(self):
        config, result = self.run_contended(
            "caesar", faults=2, conflict_rate=0.15, duration_ms=3_000.0
        )
        in_flight_bound = config.total_clients()
        assert result.completed > 150
        for process in result.deployment.processes:
            archived = sum(
                len(bucket) for bucket in process._committed_per_key.values()
            )
            assert process.peak_live_per_key <= 2 * in_flight_bound
            assert archived > 3 * process.peak_live_per_key
