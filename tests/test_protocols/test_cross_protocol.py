"""Cross-protocol integration and property tests.

Every protocol in the registry must satisfy the replicated-state-machine
basics on the same workloads: all submitted commands execute at every
replica (after quiescence), conflicting commands execute in the same
relative order everywhere, and replicated stores converge.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.commands import Partitioner
from repro.core.config import ProtocolConfig
from repro.kvstore.store import KeyValueStore
from repro.protocols.registry import build_process, protocol_names
from repro.simulator.inline import InlineNetwork

FULL_REPLICATION_PROTOCOLS = ["tempo", "atlas", "epaxos", "caesar", "fpaxos"]


def run_schedule(protocol, schedule, r=5, f=1, recorder=None):
    config = ProtocolConfig(num_processes=r, faults=f)
    partitioner = Partitioner(1)
    stores = {}
    processes = []
    for process_id in range(r):
        store = KeyValueStore()
        stores[process_id] = store
        processes.append(
            build_process(
                protocol, process_id, config, partitioner=partitioner, apply_fn=store.apply
            )
        )
    if recorder is not None:
        # Before any submission: the trace must cover every execution.
        recorder.attach(processes)
    network = InlineNetwork(processes)
    commands = []
    for submitter, hot in schedule:
        process = processes[submitter % r]
        key = "hot" if hot else f"k{len(commands)}"
        command = process.new_command([key])
        process.submit(command, 0.0)
        commands.append(command)
        network.step(0.0)
    network.settle(rounds=40)
    return processes, stores, commands


class TestAllProtocolsBasics:
    @pytest.mark.parametrize("protocol", FULL_REPLICATION_PROTOCOLS)
    def test_all_commands_execute_everywhere(self, protocol):
        schedule = [(i, i % 2 == 0) for i in range(8)]
        processes, _, commands = run_schedule(protocol, schedule)
        for command in commands:
            for process in processes:
                assert command.dot in process.executed_dots(), (
                    f"{protocol}: {command.dot} missing at {process.process_id}"
                )

    @pytest.mark.parametrize("protocol", FULL_REPLICATION_PROTOCOLS)
    def test_conflicting_commands_share_one_order(self, protocol):
        schedule = [(i, True) for i in range(8)]
        processes, _, commands = run_schedule(protocol, schedule)
        dots = {command.dot for command in commands}
        orders = {
            tuple(dot for dot in process.executed_dots() if dot in dots)
            for process in processes
        }
        assert len(orders) == 1

    @pytest.mark.parametrize("protocol", FULL_REPLICATION_PROTOCOLS)
    def test_stores_converge(self, protocol):
        schedule = [(i, True) for i in range(6)] + [(i, False) for i in range(4)]
        _, stores, _ = run_schedule(protocol, schedule)
        snapshots = {
            tuple(sorted(store.snapshot().items())) for store in stores.values()
        }
        assert len(snapshots) == 1

    @pytest.mark.parametrize("protocol", FULL_REPLICATION_PROTOCOLS)
    def test_commands_execute_at_most_once(self, protocol):
        schedule = [(i, True) for i in range(6)]
        processes, _, _ = run_schedule(protocol, schedule)
        for process in processes:
            executed = process.executed_dots()
            assert len(executed) == len(set(executed))


class TestTraceChecker:
    """The :mod:`repro.analysis` trace checker is green on every protocol.

    The recorder attaches before any submission, so the checked trace covers
    every execution of the run, including the contended ``hot`` key where
    the ordering invariants actually bite.
    """

    @pytest.mark.parametrize("protocol", FULL_REPLICATION_PROTOCOLS)
    def test_trace_checker_green_on_contended_schedule(self, protocol):
        from repro.analysis.trace import ExecutionTraceRecorder

        recorder = ExecutionTraceRecorder()
        schedule = [(i, True) for i in range(8)] + [(i, False) for i in range(4)]
        run_schedule(protocol, schedule, recorder=recorder)
        report = recorder.check()
        report.raise_if_violations()
        assert report.events > 0
        # Tempo and Caesar events carry committed timestamps; the checker
        # must actually have exercised the timestamp invariants for them.
        if protocol in ("tempo", "caesar"):
            timestamped = [
                event
                for events in recorder.events_by_process.values()
                for event in events
                if event.timestamp is not None
            ]
            assert timestamped

    def test_trace_checker_green_on_janus_multishard(self):
        from repro.analysis.trace import ExecutionTraceRecorder
        from repro.protocols.janus import JanusProcess

        class PrefixPartitioner(Partitioner):
            def __init__(self, partitions: int) -> None:
                super().__init__(num_partitions=partitions)

            def partition_of(self, key: str) -> int:
                if key.startswith("s") and "-" in key:
                    return int(key[1 : key.index("-")])
                return 0

        shards, r = 2, 3
        config = ProtocolConfig(num_processes=r, faults=1, num_partitions=shards)
        partitioner = PrefixPartitioner(shards)
        processes = [
            JanusProcess(process_id, config, partitioner=partitioner)
            for process_id in range(config.total_processes())
        ]
        recorder = ExecutionTraceRecorder().attach(processes)
        network = InlineNetwork(processes)
        for index in range(6):
            submitter = processes[index % len(processes)]
            keys = ["s0-hot", "s1-hot"] if index % 2 == 0 else [f"s{index % shards}-k{index}"]
            command = submitter.new_command(keys)
            submitter.submit(command, 0.0)
            network.step(0.0)
        network.settle(rounds=40)
        report = recorder.check()
        report.raise_if_violations()
        assert report.events > 0
        # Replicas of the two shards really landed in different partitions.
        assert len(set(recorder.partitions.values())) == shards


class TestRandomSchedules:
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        protocol=st.sampled_from(["tempo", "atlas", "epaxos", "fpaxos"]),
        schedule=st.lists(
            st.tuples(st.integers(0, 4), st.booleans()), min_size=1, max_size=10
        ),
    )
    def test_random_workloads_preserve_ordering_and_liveness(self, protocol, schedule):
        processes, stores, commands = run_schedule(protocol, schedule)
        dots = {command.dot for command in commands}
        for process in processes:
            assert dots <= set(process.executed_dots())
        hot_dots = {
            command.dot for command in commands if "hot" in command.keys
        }
        orders = {
            tuple(dot for dot in process.executed_dots() if dot in hot_dots)
            for process in processes
        }
        assert len(orders) == 1
        snapshots = {
            tuple(sorted(store.snapshot().items())) for store in stores.values()
        }
        assert len(snapshots) == 1
