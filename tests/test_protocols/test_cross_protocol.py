"""Cross-protocol integration and property tests.

Every protocol in the registry must satisfy the replicated-state-machine
basics on the same workloads: all submitted commands execute at every
replica (after quiescence), conflicting commands execute in the same
relative order everywhere, and replicated stores converge.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.commands import Partitioner
from repro.core.config import ProtocolConfig
from repro.kvstore.store import KeyValueStore
from repro.protocols.registry import build_process, protocol_names
from repro.simulator.inline import InlineNetwork

FULL_REPLICATION_PROTOCOLS = ["tempo", "atlas", "epaxos", "caesar", "fpaxos"]


def run_schedule(protocol, schedule, r=5, f=1):
    config = ProtocolConfig(num_processes=r, faults=f)
    partitioner = Partitioner(1)
    stores = {}
    processes = []
    for process_id in range(r):
        store = KeyValueStore()
        stores[process_id] = store
        processes.append(
            build_process(
                protocol, process_id, config, partitioner=partitioner, apply_fn=store.apply
            )
        )
    network = InlineNetwork(processes)
    commands = []
    for submitter, hot in schedule:
        process = processes[submitter % r]
        key = "hot" if hot else f"k{len(commands)}"
        command = process.new_command([key])
        process.submit(command, 0.0)
        commands.append(command)
        network.step(0.0)
    network.settle(rounds=40)
    return processes, stores, commands


class TestAllProtocolsBasics:
    @pytest.mark.parametrize("protocol", FULL_REPLICATION_PROTOCOLS)
    def test_all_commands_execute_everywhere(self, protocol):
        schedule = [(i, i % 2 == 0) for i in range(8)]
        processes, _, commands = run_schedule(protocol, schedule)
        for command in commands:
            for process in processes:
                assert command.dot in process.executed_dots(), (
                    f"{protocol}: {command.dot} missing at {process.process_id}"
                )

    @pytest.mark.parametrize("protocol", FULL_REPLICATION_PROTOCOLS)
    def test_conflicting_commands_share_one_order(self, protocol):
        schedule = [(i, True) for i in range(8)]
        processes, _, commands = run_schedule(protocol, schedule)
        dots = {command.dot for command in commands}
        orders = {
            tuple(dot for dot in process.executed_dots() if dot in dots)
            for process in processes
        }
        assert len(orders) == 1

    @pytest.mark.parametrize("protocol", FULL_REPLICATION_PROTOCOLS)
    def test_stores_converge(self, protocol):
        schedule = [(i, True) for i in range(6)] + [(i, False) for i in range(4)]
        _, stores, _ = run_schedule(protocol, schedule)
        snapshots = {
            tuple(sorted(store.snapshot().items())) for store in stores.values()
        }
        assert len(snapshots) == 1

    @pytest.mark.parametrize("protocol", FULL_REPLICATION_PROTOCOLS)
    def test_commands_execute_at_most_once(self, protocol):
        schedule = [(i, True) for i in range(6)]
        processes, _, _ = run_schedule(protocol, schedule)
        for process in processes:
            executed = process.executed_dots()
            assert len(executed) == len(set(executed))


class TestRandomSchedules:
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        protocol=st.sampled_from(["tempo", "atlas", "epaxos", "fpaxos"]),
        schedule=st.lists(
            st.tuples(st.integers(0, 4), st.booleans()), min_size=1, max_size=10
        ),
    )
    def test_random_workloads_preserve_ordering_and_liveness(self, protocol, schedule):
        processes, stores, commands = run_schedule(protocol, schedule)
        dots = {command.dot for command in commands}
        for process in processes:
            assert dots <= set(process.executed_dots())
        hot_dots = {
            command.dot for command in commands if "hot" in command.keys
        }
        orders = {
            tuple(dot for dot in process.executed_dots() if dot in hot_dots)
            for process in processes
        }
        assert len(orders) == 1
        snapshots = {
            tuple(sorted(store.snapshot().items())) for store in stores.values()
        }
        assert len(snapshots) == 1
