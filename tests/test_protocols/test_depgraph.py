"""Unit and property tests of the dependency graph executor."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.identifiers import Dot
from repro.protocols.depgraph import DependencyGraph, DependencyGraphExecutor


def dot(source, sequence):
    return Dot(source, sequence)


class TestBasicExecution:
    def test_independent_commands_execute_immediately(self):
        graph = DependencyGraph()
        graph.commit(dot(0, 1), [])
        graph.commit(dot(1, 1), [])
        assert set(graph.execute_ready()) == {dot(0, 1), dot(1, 1)}

    def test_dependency_blocks_until_committed(self):
        graph = DependencyGraph()
        graph.commit(dot(0, 1), [dot(1, 1)])
        assert graph.execute_ready() == []
        graph.commit(dot(1, 1), [])
        assert graph.execute_ready() == [dot(1, 1), dot(0, 1)]

    def test_chain_executes_in_dependency_order(self):
        graph = DependencyGraph()
        graph.commit(dot(0, 3), [dot(0, 2)])
        graph.commit(dot(0, 2), [dot(0, 1)])
        graph.commit(dot(0, 1), [])
        assert graph.execute_ready() == [dot(0, 1), dot(0, 2), dot(0, 3)]

    def test_cycle_executes_as_one_component_ordered_by_sequence(self):
        graph = DependencyGraph()
        graph.commit(dot(0, 1), [dot(1, 1)], sequence=2)
        graph.commit(dot(1, 1), [dot(0, 1)], sequence=1)
        executed = graph.execute_ready()
        assert executed == [dot(1, 1), dot(0, 1)]

    def test_cycle_with_uncommitted_member_blocks_entirely(self):
        # Figure 3: w -> y -> z -> {w, x}, x uncommitted.
        w, x, y, z = dot(0, 1), dot(0, 2), dot(1, 1), dot(2, 1)
        graph = DependencyGraph()
        graph.commit(w, [y])
        graph.commit(y, [z])
        graph.commit(z, [w, x])
        assert graph.execute_ready() == []
        graph.commit(x, [])
        executed = graph.execute_ready()
        assert set(executed) == {w, x, y, z}

    def test_executed_commands_are_not_revisited(self):
        graph = DependencyGraph()
        graph.commit(dot(0, 1), [])
        assert graph.execute_ready() == [dot(0, 1)]
        assert graph.execute_ready() == []
        graph.commit(dot(0, 2), [dot(0, 1)])
        assert graph.execute_ready() == [dot(0, 2)]

    def test_duplicate_commit_is_ignored(self):
        graph = DependencyGraph()
        graph.commit(dot(0, 1), [])
        graph.commit(dot(0, 1), [dot(9, 9)])
        assert graph.dependencies_of(dot(0, 1)) == frozenset()

    def test_largest_pending_component(self):
        graph = DependencyGraph()
        graph.commit(dot(0, 1), [dot(1, 1)])
        graph.commit(dot(1, 1), [dot(2, 1)])
        graph.commit(dot(2, 1), [dot(0, 1), dot(3, 1)])
        assert graph.largest_pending_component() == 3

    def test_missing_dependencies_track_commits_incrementally(self):
        graph = DependencyGraph()
        graph.commit(dot(0, 1), [dot(1, 1), dot(2, 1)])
        assert graph.missing_dependencies_of(dot(0, 1)) == {dot(1, 1), dot(2, 1)}
        graph.commit(dot(1, 1), [])
        assert graph.missing_dependencies_of(dot(0, 1)) == {dot(2, 1)}
        graph.commit(dot(2, 1), [])
        assert graph.missing_dependencies_of(dot(0, 1)) == frozenset()
        # Transitive blocking resolves in the same step.
        assert graph.execute_ready() == [dot(1, 1), dot(2, 1), dot(0, 1)]


class TestExecutor:
    def test_executor_records_order_and_component_sizes(self):
        executor = DependencyGraphExecutor()
        executor.commit(dot(0, 1), [dot(1, 1)], sequence=2)
        assert executor.executed() == ()
        newly = executor.commit(dot(1, 1), [dot(0, 1)], sequence=1)
        assert newly == [dot(1, 1), dot(0, 1)]
        assert executor.max_component_size() == 2

    def test_pending_lists_unexecuted_committed_commands(self):
        executor = DependencyGraphExecutor()
        executor.commit(dot(0, 1), [dot(5, 5)])
        assert executor.pending() == [dot(0, 1)]

    def test_advance_without_new_commits_is_a_noop(self):
        executor = DependencyGraphExecutor()
        executor.commit(dot(0, 1), [dot(5, 5)])  # blocked on uncommitted dep
        assert executor.advance() == []
        # A clean graph short-circuits, and the blocked command stays put.
        assert executor.advance() == []
        assert executor.pending() == [dot(0, 1)]
        # The unblocking commit still flows through.
        newly = executor.commit(dot(5, 5), [])
        assert newly == [dot(5, 5), dot(0, 1)]
        assert executor.advance() == []

    def test_duplicate_commit_does_not_mark_graph_dirty(self):
        executor = DependencyGraphExecutor()
        executor.commit(dot(0, 1), [])
        assert executor.commit(dot(0, 1), []) == []
        assert executor.execution_order == [dot(0, 1)]


class TestProperties:
    @given(
        st.lists(
            st.tuples(st.integers(1, 30), st.lists(st.integers(1, 30), max_size=4)),
            max_size=30,
        )
    )
    def test_execution_respects_dependencies_and_executes_each_once(self, spec):
        """For random committed graphs, execution order respects committed
        dependencies across components and never repeats a command."""
        graph = DependencyGraph()
        committed = {}
        for sequence, (node, deps) in enumerate(spec, start=1):
            node_dot = dot(0, node)
            if node_dot in committed:
                continue
            dep_dots = [dot(0, other) for other in deps if other != node]
            graph.commit(node_dot, dep_dots, sequence=sequence)
            committed[node_dot] = set(dep_dots)
        executed = graph.execute_ready()
        assert len(executed) == len(set(executed))
        position = {node: index for index, node in enumerate(executed)}
        for node in executed:
            for dependency in committed[node]:
                if dependency not in committed:
                    # Depends on an uncommitted command: must not execute.
                    raise AssertionError(f"{node} executed with missing dep")
                # The dependency is executed, either before this node or in
                # the same strongly connected component.
                assert dependency in position

    @given(st.integers(2, 40))
    def test_long_chain_executes_completely(self, length):
        graph = DependencyGraph()
        for index in range(length, 0, -1):
            deps = [dot(0, index - 1)] if index > 1 else []
            graph.commit(dot(0, index), deps, sequence=index)
        executed = graph.execute_ready()
        assert executed == [dot(0, index) for index in range(1, length + 1)]
