"""Tests for the EPaxos and Atlas dependency-based protocols."""

from __future__ import annotations

import pytest

from repro.core.config import ProtocolConfig


class TestQuorumSizes:
    def test_epaxos_fast_quorum_is_three_quarters(self, make_cluster):
        cluster = make_cluster("epaxos", r=5, f=1)
        assert cluster.processes[0].fast_quorum_size() == 3
        cluster7 = make_cluster("epaxos", r=7, f=1)
        assert cluster7.processes[0].fast_quorum_size() == 5

    def test_atlas_fast_quorum_matches_tempo(self, make_cluster):
        cluster = make_cluster("atlas", r=5, f=2)
        assert cluster.processes[0].fast_quorum_size() == 4
        assert cluster.processes[0].slow_quorum_size() == 3

    def test_epaxos_slow_quorum_is_majority(self, make_cluster):
        cluster = make_cluster("epaxos", r=5, f=1)
        assert cluster.processes[0].slow_quorum_size() == 3


class TestCommitAndExecute:
    @pytest.mark.parametrize("protocol", ["epaxos", "atlas"])
    def test_non_conflicting_commands_execute_everywhere(self, make_cluster, protocol):
        cluster = make_cluster(protocol)
        commands = [cluster.submit(i, [f"k{i}"]) for i in range(5)]
        cluster.settle()
        for command in commands:
            assert cluster.executed_everywhere(command)

    @pytest.mark.parametrize("protocol", ["epaxos", "atlas"])
    def test_conflicting_commands_keep_consistent_order(self, make_cluster, protocol):
        cluster = make_cluster(protocol)
        commands = [cluster.submit(i % 5, ["hot"]) for i in range(10)]
        cluster.settle(rounds=25)
        assert cluster.consistent_order(commands)
        assert cluster.stores_converged()

    @pytest.mark.parametrize("protocol,f", [("atlas", 1), ("atlas", 2), ("epaxos", 1)])
    def test_committed_dependencies_agree_across_replicas(self, make_cluster, protocol, f):
        cluster = make_cluster(protocol, f=f)
        commands = [cluster.submit(i % 5, ["hot"]) for i in range(6)]
        cluster.settle(rounds=25)
        for command in commands:
            dependency_sets = {
                cluster.processes[i].committed_dependencies(command.dot)
                for i in range(5)
            }
            assert len(dependency_sets) == 1

    def test_conflicting_commands_have_dependency_edges(self, make_cluster):
        cluster = make_cluster("atlas")
        first = cluster.submit(0, ["hot"])
        cluster.settle()
        second = cluster.submit(1, ["hot"])
        cluster.settle()
        deps_second = cluster.processes[0].committed_dependencies(second.dot)
        assert first.dot in deps_second

    def test_non_conflicting_commands_have_no_dependencies(self, make_cluster):
        cluster = make_cluster("atlas")
        first = cluster.submit(0, ["a"])
        cluster.settle()
        second = cluster.submit(1, ["b"])
        cluster.settle()
        assert cluster.processes[0].committed_dependencies(second.dot) == frozenset()


class TestFastPathConditions:
    def test_atlas_f1_never_needs_the_slow_path(self, make_cluster):
        from repro.simulator.inline import RecordingNetwork

        cluster = make_cluster("atlas", f=1)
        cluster.network = RecordingNetwork(cluster.processes)
        for index in range(8):
            cluster.submit(index % 5, ["hot"])
        cluster.network.settle(rounds=25)
        kinds = {kind for _, _, kind in cluster.network.log}
        assert "MDepAccept" not in kinds

    def test_atlas_f2_takes_slow_path_on_unrecoverable_dependencies(self, make_cluster):
        from repro.simulator.inline import RecordingNetwork

        cluster = make_cluster("atlas", f=2)
        cluster.network = RecordingNetwork(cluster.processes)
        for index in range(10):
            cluster.submit(index % 5, ["hot"])
        cluster.network.settle(rounds=30)
        kinds = [kind for _, _, kind in cluster.network.log]
        assert "MDepAccept" in kinds

    def test_epaxos_takes_slow_path_when_replies_disagree(self, make_cluster):
        from repro.simulator.inline import RecordingNetwork

        cluster = make_cluster("epaxos", f=1)
        cluster.network = RecordingNetwork(cluster.processes)
        for index in range(10):
            cluster.submit(index % 5, ["hot"])
        cluster.network.settle(rounds=30)
        kinds = [kind for _, _, kind in cluster.network.log]
        assert "MDepAccept" in kinds

    def test_epaxos_fast_path_for_isolated_commands(self, make_cluster):
        from repro.simulator.inline import RecordingNetwork

        cluster = make_cluster("epaxos", f=1)
        cluster.network = RecordingNetwork(cluster.processes)
        cluster.submit(0, ["solo"])
        cluster.network.settle()
        kinds = {kind for _, _, kind in cluster.network.log}
        assert "MDepAccept" not in kinds


class TestReadWriteDistinction:
    def test_reads_do_not_depend_on_reads(self, make_cluster):
        cluster = make_cluster("atlas")
        first = cluster.submit(0, ["hot"], read_only=True)
        cluster.settle()
        second = cluster.submit(1, ["hot"], read_only=True)
        cluster.settle()
        assert first.dot not in cluster.processes[0].committed_dependencies(second.dot)

    def test_writes_depend_on_reads(self, make_cluster):
        cluster = make_cluster("atlas")
        read = cluster.submit(0, ["hot"], read_only=True)
        cluster.settle()
        write = cluster.submit(1, ["hot"])
        cluster.settle()
        assert read.dot in cluster.processes[0].committed_dependencies(write.dot)

    def test_distinction_can_be_disabled(self, make_cluster):
        cluster = make_cluster("atlas", read_write_aware=False)
        first = cluster.submit(0, ["hot"], read_only=True)
        cluster.settle()
        second = cluster.submit(1, ["hot"], read_only=True)
        cluster.settle()
        assert first.dot in cluster.processes[0].committed_dependencies(second.dot)
