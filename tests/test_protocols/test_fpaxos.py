"""Tests for the FPaxos (leader-based) baseline."""

from __future__ import annotations

from repro.simulator.inline import RecordingNetwork


class TestLeadership:
    def test_rank_zero_is_the_default_leader(self, make_cluster):
        cluster = make_cluster("fpaxos")
        assert cluster.processes[0].is_leader()
        assert not cluster.processes[1].is_leader()
        assert cluster.processes[3].leader == 0

    def test_set_leader_moves_leadership(self, make_cluster):
        cluster = make_cluster("fpaxos")
        for process in cluster.processes:
            process.set_leader(2)
        assert cluster.processes[2].is_leader()
        assert not cluster.processes[0].is_leader()


class TestOrdering:
    def test_all_commands_execute_in_slot_order_everywhere(self, make_cluster):
        cluster = make_cluster("fpaxos")
        commands = [cluster.submit(i % 5, ["hot"]) for i in range(10)]
        cluster.settle(rounds=20)
        orders = {tuple(process.executed_dots()) for process in cluster.processes}
        assert len(orders) == 1
        assert len(list(orders)[0]) == len(commands)

    def test_non_leader_submissions_are_forwarded(self, make_cluster):
        cluster = make_cluster("fpaxos")
        cluster.network = RecordingNetwork(cluster.processes)
        cluster.submit(3, ["x"])
        cluster.network.settle()
        kinds = [kind for _, _, kind in cluster.network.log]
        assert "MForward" in kinds

    def test_leader_submissions_are_not_forwarded(self, make_cluster):
        cluster = make_cluster("fpaxos")
        cluster.network = RecordingNetwork(cluster.processes)
        cluster.submit(0, ["x"])
        cluster.network.settle()
        kinds = [kind for _, _, kind in cluster.network.log]
        assert "MForward" not in kinds

    def test_phase2_uses_f_plus_one_acceptors(self, make_cluster):
        cluster = make_cluster("fpaxos", f=1)
        cluster.network = RecordingNetwork(cluster.processes)
        cluster.submit(0, ["x"])
        cluster.network.settle()
        accept_targets = {
            destination for _, destination, kind in cluster.network.log if kind == "MAccept"
        }
        # The leader self-delivers its own accept; one other acceptor needed.
        assert len(accept_targets) == cluster.config.slow_quorum_size - 1

    def test_decided_log_is_contiguous_and_applied_in_order(self, make_cluster):
        cluster = make_cluster("fpaxos")
        for index in range(6):
            cluster.submit(index % 5, [f"k{index}"])
        cluster.settle(rounds=20)
        for process in cluster.processes:
            assert process.applied_up_to() == 6
            assert process.log_length() == 6

    def test_stores_converge(self, make_cluster):
        cluster = make_cluster("fpaxos")
        for index in range(8):
            cluster.submit(index % 5, ["hot"])
        cluster.settle(rounds=20)
        assert cluster.stores_converged()

    def test_stale_ballot_accept_is_ignored(self, make_cluster):
        from repro.core.commands import Command
        from repro.core.identifiers import Dot
        from repro.protocols.dep_messages import MAccept

        cluster = make_cluster("fpaxos")
        follower = cluster.processes[1]
        follower.ballot = 5
        command = Command.write(Dot(0, 99), ["x"])
        follower.deliver(0, MAccept(command.dot, command, 1, 2), 0.0)
        assert not [
            envelope
            for envelope in follower.drain_outbox()
            if type(envelope.message).__name__ == "MAccepted"
        ]
