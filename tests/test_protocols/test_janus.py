"""Tests for Janus* (dependency-based partial replication)."""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.core.commands import Partitioner
from repro.core.config import ProtocolConfig
from repro.kvstore.store import KeyValueStore
from repro.protocols.janus import JanusProcess
from repro.simulator.inline import InlineNetwork, RecordingNetwork


class PrefixPartitioner(Partitioner):
    def __init__(self, partitions: int) -> None:
        super().__init__(num_partitions=partitions)

    def partition_of(self, key: str) -> int:
        if key.startswith("s") and "-" in key:
            return int(key[1:key.index("-")])
        return 0


def build_cluster(shards=2, r=3, f=1):
    config = ProtocolConfig(num_processes=r, faults=f, num_partitions=shards)
    partitioner = PrefixPartitioner(shards)
    stores: Dict[int, KeyValueStore] = {}
    processes: List[JanusProcess] = []
    for process_id in range(config.total_processes()):
        store = KeyValueStore(config.partition_of_process(process_id))
        stores[process_id] = store
        processes.append(
            JanusProcess(
                process_id, config, partitioner=partitioner, apply_fn=store.apply
            )
        )
    return config, partitioner, stores, processes, InlineNetwork(processes)


class TestSingleShard:
    def test_behaves_like_atlas_on_one_shard(self):
        config, _, stores, processes, network = build_cluster(shards=1)
        command = processes[0].new_command(["s0-x"])
        processes[0].submit(command, 0.0)
        network.settle()
        for process in processes:
            assert command.dot in process.executed_dots()


class TestMultiShard:
    def test_cross_shard_command_executes_at_both_shards(self):
        config, _, stores, processes, network = build_cluster()
        command = processes[0].new_command(["s0-a", "s1-b"])
        processes[0].submit(command, 0.0)
        network.settle(rounds=25)
        shards_executed = {
            process.partition
            for process in processes
            if command.dot in process.executed_dots()
        }
        assert shards_executed == {0, 1}

    def test_only_local_keys_are_applied_to_each_shard_store(self):
        config, _, stores, processes, network = build_cluster()
        command = processes[0].new_command(["s0-a", "s1-b"])
        processes[0].submit(command, 0.0)
        network.settle(rounds=25)
        shard0_store = stores[0]
        shard1_store = stores[3]
        assert shard0_store.get("s0-a") is not None
        assert shard0_store.get("s1-b") is None
        assert shard1_store.get("s1-b") is not None
        assert shard1_store.get("s0-a") is None

    def test_commit_is_broadcast_to_every_process(self):
        """Janus* is non-genuine: commits are disseminated system-wide."""
        config, _, _, processes, _ = build_cluster()
        network = RecordingNetwork(processes)
        command = processes[0].new_command(["s0-a", "s1-b"])
        processes[0].submit(command, 0.0)
        network.settle(rounds=25)
        commit_destinations = {
            destination
            for _, destination, kind in network.log
            if kind == "MDepCommit"
        }
        # Every other process receives the commit (self-delivery is local).
        assert commit_destinations == set(range(1, config.total_processes()))

    def test_cross_shard_conflicting_commands_are_ordered_consistently(self):
        config, _, _, processes, network = build_cluster()
        first = processes[0].new_command(["s0-x", "s1-x"])
        second = processes[1].new_command(["s0-x", "s1-x"])
        processes[0].submit(first, 0.0)
        processes[1].submit(second, 0.0)
        network.settle(rounds=30)
        dots = {first.dot, second.dot}
        orders = set()
        for process in processes:
            executed = [dot for dot in process.executed_dots() if dot in dots]
            if len(executed) == 2:
                orders.add(tuple(executed))
        assert len(orders) == 1

    def test_dependencies_span_shards(self):
        config, _, _, processes, network = build_cluster()
        first = processes[0].new_command(["s1-x"])
        # Submitted by a shard-0 process but only accessing shard 1: allowed
        # for Janus* (the coordinator need not replicate the shard).
        processes[3].submit(first, 0.0)
        network.settle(rounds=20)
        second = processes[0].new_command(["s0-y", "s1-x"])
        processes[0].submit(second, 0.0)
        network.settle(rounds=20)
        deps = processes[0].committed_dependencies(second.dot)
        assert first.dot in deps

    def test_mixed_workload_all_commands_execute(self):
        config, _, _, processes, network = build_cluster(shards=3)
        commands = []
        for index in range(9):
            submitter = processes[index % len(processes)]
            if index % 3 == 0:
                keys = [f"s{index % 3}-k", f"s{(index + 1) % 3}-k"]
            else:
                keys = [f"s{index % 3}-k{index}"]
            command = submitter.new_command(keys)
            submitter.submit(command, 0.0)
            commands.append(command)
        network.settle(rounds=40)
        for command in commands:
            accessed = {
                int(key[1:key.index("-")]) for key in command.keys
            }
            for process in processes:
                if process.partition in accessed:
                    assert command.dot in process.executed_dots()
