"""Tests for the protocol registry."""

from __future__ import annotations

import pytest

from repro.core.base import ProcessBase
from repro.core.config import ProtocolConfig
from repro.protocols.registry import PROTOCOLS, build_process, protocol_names


class TestRegistry:
    def test_all_evaluated_protocols_are_registered(self):
        assert set(protocol_names()) == {
            "tempo",
            "atlas",
            "epaxos",
            "caesar",
            "fpaxos",
            "janus",
        }

    def test_build_process_returns_a_process(self):
        config = ProtocolConfig(num_processes=3, faults=1)
        for name in protocol_names():
            process = build_process(name, 0, config)
            assert isinstance(process, ProcessBase)
            assert process.process_id == 0

    def test_unknown_protocol_raises_with_available_names(self):
        config = ProtocolConfig(num_processes=3, faults=1)
        with pytest.raises(KeyError) as excinfo:
            build_process("raft", 0, config)
        assert "tempo" in str(excinfo.value)

    def test_extra_kwargs_are_forwarded(self):
        config = ProtocolConfig(num_processes=3, faults=1)
        process = build_process("fpaxos", 1, config, leader_rank=2)
        assert process.leader_rank == 2
        tempo = build_process("tempo", 0, config, ack_broadcast=False)
        assert tempo.ack_broadcast is False

    def test_registry_values_are_classes(self):
        for factory in PROTOCOLS.values():
            assert callable(factory)
