"""The acknowledgement-driven GC floor in ``TempoProcess.compact()``.

With the reliable-delivery layer armed, ``compact()`` floors its stable
threshold at the minimum promise frontier the partition peers have
*acknowledged* absorbing — so the send-once promise optimisation can no
longer drop a promise a slow (or briefly disconnected) peer still needs.
Crashed peers stop acking, which pins the floor until they recover,
exactly like ``GcTracker``'s watermark pins collection.
"""

from __future__ import annotations

from repro.core.commands import Partitioner
from repro.core.config import ProtocolConfig
from repro.core.identifiers import Dot
from repro.core.messages import MDeliveryAck
from repro.core.process import TempoProcess
from repro.reliability import TRACKED_KIND_IDS, RetransmitBuffer
from repro.simulator.inline import InlineNetwork

COMMIT_KIND = TRACKED_KIND_IDS["MCommit"]


def _cluster(enable_reliability=True):
    config = ProtocolConfig(num_processes=3, faults=1)
    partitioner = Partitioner(1)
    # Watermark GC off: these tests target the epoch-1 compact() path.
    processes = [
        TempoProcess(process_id, config, partitioner=partitioner, watermark_gc=False)
        for process_id in range(3)
    ]
    if enable_reliability:
        for process in processes:
            process.enable_reliability(RetransmitBuffer(process.process_id))
    return processes, InlineNetwork(processes)


def _run_commands(processes, network, count=5):
    commands = []
    for index in range(count):
        process = processes[index % 3]
        command = process.new_command(["hot"])
        process.submit(command, 0.0)
        commands.append(command)
    network.settle(rounds=15)
    return commands


def _ack(target, sender, frontier):
    """Deliver a delivery-ack from ``sender`` carrying its promise frontier."""
    target.deliver(
        sender,
        MDeliveryAck(Dot(sender, 1), kind_id=COMMIT_KIND, epoch=0, frontier=frontier),
        0.0,
    )


class TestAckFloor:
    def test_unacked_peers_pin_the_floor_at_zero(self):
        processes, network = _cluster()
        target = processes[0]
        _run_commands(processes, network)
        # Forget everything the inline run acked; a floor of zero must
        # block both record compaction and promise collection outright.
        target._acked_frontiers = {1: 0, 2: 0}
        assert target.stable_timestamp() > 0
        assert target.compact() == 0
        before = target.tracker.detached() | {
            promise
            for dot in target.executed_dots()
            for promise in target.tracker.attached_for(dot)
        }
        assert before, "expected surviving promises under a zero floor"

    def test_floor_is_the_minimum_over_peers(self):
        processes, network = _cluster()
        target = processes[0]
        _run_commands(processes, network)
        stable = target.stable_timestamp()
        assert stable > 1
        # Peer 2 confirmed everything; peer 1 is stuck at frontier 1.
        target._acked_frontiers = {1: 0, 2: 0}
        _ack(target, 2, stable)
        _ack(target, 1, 1)
        target.compact()
        # Every record above the slow peer's frontier kept its payload.
        for record in target._info.values():
            timestamp = record.final_timestamp or record.timestamp
            if timestamp > 1:
                assert record.command is not None

    def test_full_acks_restore_normal_compaction(self):
        acked, acked_network = _cluster()
        plain, plain_network = _cluster(enable_reliability=False)
        _run_commands(acked, acked_network)
        _run_commands(plain, plain_network)
        stable = acked[0].stable_timestamp()
        for sender in (1, 2):
            _ack(acked[0], sender, stable)
        # With every peer caught up the floor is a no-op: same compaction
        # as a cluster that never armed reliability.
        assert acked[0].compact() == plain[0].compact()

    def test_crashed_peer_pins_the_floor_until_it_acks_again(self):
        processes, network = _cluster()
        target = processes[0]
        _run_commands(processes, network)
        stable = target.stable_timestamp()
        target._acked_frontiers = {1: 0, 2: 0}
        _ack(target, 2, stable)
        _ack(target, 1, 1)
        # Peer 1 crashes: no further acks arrive, so repeated compactions
        # keep every promise above its last confirmed frontier.
        processes[1].crash()
        assert target.compact() == target.compact() == target.compact()
        kept = {
            record.final_timestamp or record.timestamp
            for record in target._info.values()
            if record.command is not None
        }
        assert kept and min(kept) > 1
        # It recovers, catches up, and acks: the floor lifts.
        processes[1].recover_process()
        _ack(target, 1, stable)
        assert target.compact() > 0

    def test_ack_frontier_is_monotone(self):
        processes, network = _cluster()
        target = processes[0]
        _run_commands(processes, network)
        stable = target.stable_timestamp()
        target._acked_frontiers = {1: 0, 2: 0}
        _ack(target, 1, stable)
        _ack(target, 2, stable)
        # A late, reordered ack with an older frontier must not regress
        # the floor below what the peer already confirmed.
        _ack(target, 1, 1)
        assert target._acked_frontiers[1] == stable
        assert target.compact() > 0

    def test_reliability_disabled_keeps_the_legacy_behaviour(self):
        processes, network = _cluster(enable_reliability=False)
        target = processes[0]
        _run_commands(processes, network)
        assert target._acked_frontiers is None
        assert target.compact() > 0

    def test_enable_reliability_seeds_partition_peer_frontiers(self):
        processes, _ = _cluster()
        assert processes[0]._acked_frontiers == {1: 0, 2: 0}
        assert processes[2]._acked_frontiers == {0: 0, 1: 0}
