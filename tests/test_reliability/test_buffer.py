"""Unit tests for the retransmit buffer (reliable-delivery layer)."""

from __future__ import annotations

import pytest

from repro.core.identifiers import Dot
from repro.core.messages import MCommit, MStable, MStableRequest
from repro.protocols.dep_messages import MCaesarCommit, MDepCommit
from repro.reliability import (
    DEFAULT_BACKOFF_BASE_MS,
    DEFAULT_MAX_ATTEMPTS,
    TRACKED_KIND_IDS,
    RetransmitBuffer,
)
from repro.wire import TYPE_TO_KIND


class TestTrackedKindPins:
    def test_tracked_kind_ids_match_the_wire_registry(self):
        # The reliability package sits below repro.wire in the import
        # order, so it pins the kind bytes; they must stay in lockstep
        # with the registry (which is append-only).
        for type_, kind in TYPE_TO_KIND.items():
            if type_.__name__ in TRACKED_KIND_IDS:
                assert TRACKED_KIND_IDS[type_.__name__] == kind

    def test_every_tracked_kind_is_registered(self):
        registered = {type_.__name__ for type_ in TYPE_TO_KIND}
        assert set(TRACKED_KIND_IDS) <= registered

    def test_tracked_set_is_exactly_the_critical_commit_and_stable_kinds(self):
        assert set(TRACKED_KIND_IDS) == {
            MCommit.__name__,
            MStable.__name__,
            MDepCommit.__name__,
            MCaesarCommit.__name__,
        }


class TestTrack:
    def test_track_registers_every_non_self_destination(self):
        buffer = RetransmitBuffer(0)
        commit = MCommit(Dot(0, 1), timestamp=3, partition=0)
        assert buffer.track([0, 1, 2], commit, now=0.0) == 2
        assert buffer.pending() == 2
        assert buffer.stats()["tracked"] == 2

    def test_rebroadcast_does_not_reset_the_budget(self):
        buffer = RetransmitBuffer(0)
        commit = MCommit(Dot(0, 1), timestamp=3, partition=0)
        buffer.track([1], commit, now=0.0)
        assert buffer.track([1], commit, now=100.0) == 0
        assert buffer.pending() == 1

    def test_distinct_kinds_for_the_same_dot_are_distinct_entries(self):
        buffer = RetransmitBuffer(0)
        dot = Dot(0, 1)
        buffer.track([1], MCommit(dot, timestamp=3, partition=0), now=0.0)
        buffer.track([1], MStable(dot, partition=0), now=0.0)
        assert buffer.pending() == 2

    def test_untracked_kinds_are_rejected(self):
        buffer = RetransmitBuffer(0)
        request = MStableRequest(Dot(0, 1), partition=0)
        with pytest.raises(ValueError, match="not a tracked message kind"):
            buffer.track([1], request, now=0.0)

    def test_constructor_validates_budget_parameters(self):
        with pytest.raises(ValueError):
            RetransmitBuffer(0, backoff_base_ms=0.0)
        with pytest.raises(ValueError):
            RetransmitBuffer(0, max_attempts=0)


class TestAcks:
    def _tracked(self):
        buffer = RetransmitBuffer(0)
        commit = MCommit(Dot(0, 1), timestamp=3, partition=0)
        buffer.track([1, 2], commit, now=0.0)
        return buffer, commit

    def test_ack_retires_exactly_one_destination(self):
        buffer, commit = self._tracked()
        kind = TRACKED_KIND_IDS["MCommit"]
        assert buffer.record_ack(1, kind, commit.dot, epoch=0)
        assert buffer.pending() == 1
        assert (1, kind, commit.dot) not in buffer.pending_keys()
        assert (2, kind, commit.dot) in buffer.pending_keys()

    def test_duplicate_ack_is_harmless(self):
        buffer, commit = self._tracked()
        kind = TRACKED_KIND_IDS["MCommit"]
        assert buffer.record_ack(1, kind, commit.dot, epoch=0)
        assert not buffer.record_ack(1, kind, commit.dot, epoch=0)
        assert buffer.stats()["acked"] == 1

    def test_stale_epoch_acks_are_ignored(self):
        buffer, commit = self._tracked()
        kind = TRACKED_KIND_IDS["MCommit"]
        # Peer 1 restarts into epoch 2; a late ack from epoch 1 must not
        # retire an entry re-tracked afterwards.
        assert buffer.record_ack(1, kind, commit.dot, epoch=2)
        buffer.track([1], MStable(commit.dot, partition=0), now=0.0)
        stable_kind = TRACKED_KIND_IDS["MStable"]
        assert not buffer.record_ack(1, stable_kind, commit.dot, epoch=1)
        assert buffer.stats()["stale_acks"] == 1
        assert (1, stable_kind, commit.dot) in buffer.pending_keys()
        # The current epoch's ack still works.
        assert buffer.record_ack(1, stable_kind, commit.dot, epoch=2)

    def test_acked_entries_are_never_resent(self):
        buffer, commit = self._tracked()
        kind = TRACKED_KIND_IDS["MCommit"]
        buffer.record_ack(1, kind, commit.dot, epoch=0)
        buffer.record_ack(2, kind, commit.dot, epoch=0)
        assert buffer.due(1e9) == []
        assert buffer.stats()["resends"] == 0


class TestBackoffSchedule:
    def test_nothing_is_due_before_the_backoff_base(self):
        buffer = RetransmitBuffer(0)
        commit = MCommit(Dot(0, 1), timestamp=3, partition=0)
        buffer.track([1], commit, now=0.0)
        assert buffer.due(DEFAULT_BACKOFF_BASE_MS - 1.0) == []
        assert buffer.due(DEFAULT_BACKOFF_BASE_MS) == [(1, commit)]

    def test_backoff_doubles_per_attempt(self):
        buffer = RetransmitBuffer(0, backoff_base_ms=100.0, max_attempts=3)
        commit = MCommit(Dot(0, 1), timestamp=3, partition=0)
        buffer.track([1], commit, now=0.0)
        # Attempt 1 at +100; rescheduled to now + 100 * 2^1.
        assert buffer.due(100.0) == [(1, commit)]
        assert buffer.due(299.0) == []
        # Attempt 2 at 100 + 200; rescheduled to now + 100 * 2^2.
        assert buffer.due(300.0) == [(1, commit)]
        assert buffer.due(699.0) == []
        assert buffer.due(700.0) == [(1, commit)]
        assert buffer.stats()["resends"] == 3

    def test_budget_exhaustion_expires_the_entry(self):
        buffer = RetransmitBuffer(0, backoff_base_ms=1.0, max_attempts=2)
        commit = MCommit(Dot(0, 1), timestamp=3, partition=0)
        buffer.track([1], commit, now=0.0)
        assert buffer.due(1e6) == [(1, commit)]
        assert buffer.due(2e6) == [(1, commit)]
        # Third wake-up: over budget - dropped, not re-sent.
        assert buffer.due(3e6) == []
        assert buffer.pending() == 0
        assert buffer.stats() == {
            "tracked": 1,
            "acked": 0,
            "resends": 2,
            "expired": 1,
            "stale_acks": 0,
            "pending": 0,
        }

    def test_default_budget_is_bounded(self):
        # The whole point of the layer: a handful of re-sends, not a storm.
        assert DEFAULT_MAX_ATTEMPTS <= 8
        buffer = RetransmitBuffer(0)
        commit = MCommit(Dot(0, 1), timestamp=3, partition=0)
        buffer.track([1, 2], commit, now=0.0)
        sends = 0
        for step in range(1, 101):
            # Each wake-up is far past every rescheduled due time, so the
            # only thing capping the sends is the per-entry budget.
            sends += len(buffer.due(step * 1e6))
        assert sends == 2 * DEFAULT_MAX_ATTEMPTS
        assert buffer.pending() == 0

    def test_due_drains_in_deterministic_order(self):
        buffer = RetransmitBuffer(0)
        first = MCommit(Dot(0, 1), timestamp=3, partition=0)
        second = MCommit(Dot(0, 2), timestamp=4, partition=0)
        buffer.track([2, 1], first, now=0.0)
        buffer.track([1], second, now=0.0)
        # Same due time: track order breaks the tie.
        assert buffer.due(DEFAULT_BACKOFF_BASE_MS) == [
            (2, first),
            (1, first),
            (1, second),
        ]
