"""Integration tests for the asyncio runtime.

All scenarios run on the virtual-clock event loop
(:mod:`repro.runtime.virtual_clock`): tick timeouts and ``asyncio.sleep``
advance virtual time instantly, so the tests are deterministic and take
milliseconds of wall time regardless of the simulated durations.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.runtime import AsyncCluster, AsyncClusterOptions, run_with_virtual_clock
from repro.runtime.channel import Channel, Router


def run(coro):
    return run_with_virtual_clock(coro)


class TestRouter:
    def test_messages_reach_registered_channels(self):
        async def scenario():
            router = Router()
            channel = router.register(1)
            await router.send(0, 1, "hello")
            sender, message = await channel.get()
            return sender, message, router.delivered

        sender, message, delivered = run(scenario())
        assert (sender, message) == (0, "hello")
        assert delivered == 1

    def test_unregistered_destination_drops(self):
        async def scenario():
            router = Router()
            await router.send(0, 42, "lost")
            return router.dropped

        assert run(scenario()) == 1

    def test_crashed_destination_drops(self):
        async def scenario():
            router = Router()
            router.register(1)
            router.crash(1)
            await router.send(0, 1, "lost")
            return router.dropped

        assert run(scenario()) == 1

    def test_channel_empty(self):
        async def scenario():
            channel = Channel.create(3)
            empty_before = channel.empty()
            await channel.put(0, "x")
            return empty_before, channel.empty()

        before, after = run(scenario())
        assert before and not after


class TestAsyncCluster:
    @pytest.mark.parametrize("protocol", ["tempo", "atlas", "fpaxos"])
    def test_submit_and_await_reply(self, protocol):
        async def scenario():
            options = AsyncClusterOptions(protocol=protocol, num_processes=3, faults=1)
            async with AsyncCluster(options) as cluster:
                reply = await cluster.submit(["alpha"], process_id=0)
                await asyncio.sleep(0.1)
                return reply, cluster.value_of("alpha"), cluster.stores_agree()

        reply, value, agree = run(scenario())
        assert reply is not None
        assert value is not None
        assert agree

    def test_concurrent_conflicting_submissions_converge(self):
        async def scenario():
            options = AsyncClusterOptions(protocol="tempo", num_processes=3, faults=1)
            async with AsyncCluster(options) as cluster:
                replies = await cluster.submit_many([["hot"]] * 6 + [["cold"]] * 3)
                await asyncio.sleep(0.2)
                counts = cluster.executed_counts()
                return replies, counts, cluster.stores_agree()

        replies, counts, agree = run(scenario())
        assert len(replies) == 9
        assert agree
        assert all(count == 9 for count in counts.values())


    def test_executions_match_across_replicas_with_latency(self):
        async def scenario():
            options = AsyncClusterOptions(
                protocol="tempo", num_processes=3, faults=1, latency_seconds=0.002
            )
            async with AsyncCluster(options) as cluster:
                await cluster.submit_many([["k1"], ["k2"], ["k1"]])
                await asyncio.sleep(0.3)
                orders = {
                    tuple(str(dot) for dot, _ in process.executed)
                    for process in cluster.processes
                }
                return orders

        orders = run(scenario())
        assert len(orders) == 1

    def test_larger_scenario_fits_in_the_virtual_time_budget(self):
        """A workload that would take seconds of wall time on the real
        clock (25 commands x 2ms injected latency x several hops) completes
        instantly under the virtual clock."""

        async def scenario():
            options = AsyncClusterOptions(
                protocol="tempo", num_processes=5, faults=2, latency_seconds=0.002
            )
            async with AsyncCluster(options) as cluster:
                await cluster.submit_many([[f"k{index % 7}"] for index in range(25)])
                await asyncio.sleep(0.5)
                counts = cluster.executed_counts()
                return counts, cluster.stores_agree()

        counts, agree = run(scenario())
        assert agree
        assert all(count == 25 for count in counts.values())

    def test_cluster_can_be_restarted(self):
        async def scenario():
            cluster = AsyncCluster(AsyncClusterOptions(num_processes=3))
            await cluster.start()
            await cluster.submit(["x"])
            await cluster.stop()
            # Starting again after a stop must not raise.
            await cluster.start()
            await cluster.stop()
            return True

        assert run(scenario())


class TestVirtualClock:
    def test_long_sleeps_cost_no_wall_time(self):
        import time

        async def scenario():
            loop = asyncio.get_running_loop()
            before = loop.time()
            await asyncio.sleep(60.0)
            return loop.time() - before

        start = time.monotonic()
        elapsed_virtual = run(scenario())
        assert elapsed_virtual >= 60.0
        assert time.monotonic() - start < 5.0

    def test_wait_for_timeouts_fire_in_virtual_time(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            before = loop.time()
            try:
                await asyncio.wait_for(asyncio.get_event_loop().create_future(), timeout=2.0)
            except asyncio.TimeoutError:
                return loop.time() - before
            return None

        elapsed = run(scenario())
        assert elapsed is not None and elapsed >= 2.0

    def test_cluster_restarts_across_distinct_loops(self):
        """Each run_with_virtual_clock call creates a fresh loop; the
        cluster clock must rebind on start so time keeps advancing."""
        cluster = AsyncCluster(AsyncClusterOptions(num_processes=3))

        async def round_trip():
            async with cluster:
                reply = await cluster.submit(["x"])
                return reply is not None, cluster._now_ms()

        first_ok, first_now = run(round_trip())
        second_ok, second_now = run(round_trip())
        assert first_ok and second_ok
        assert second_now >= first_now

    def test_ready_work_drains_before_time_advances(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            order = []

            async def worker():
                order.append(("worker", loop.time()))

            task = asyncio.ensure_future(worker())
            await asyncio.sleep(1.0)
            order.append(("sleeper", loop.time()))
            await task
            return order

        order = run(scenario())
        # The ready worker ran before the clock jumped to the sleep deadline.
        assert order[0][0] == "worker"
        assert order[0][1] < order[1][1]
