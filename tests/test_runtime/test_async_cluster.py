"""Integration tests for the asyncio runtime."""

from __future__ import annotations

import asyncio

import pytest

from repro.runtime import AsyncCluster, AsyncClusterOptions
from repro.runtime.channel import Channel, Router


def run(coro):
    return asyncio.run(coro)


class TestRouter:
    def test_messages_reach_registered_channels(self):
        async def scenario():
            router = Router()
            channel = router.register(1)
            await router.send(0, 1, "hello")
            sender, message = await channel.get()
            return sender, message, router.delivered

        sender, message, delivered = run(scenario())
        assert (sender, message) == (0, "hello")
        assert delivered == 1

    def test_unregistered_destination_drops(self):
        async def scenario():
            router = Router()
            await router.send(0, 42, "lost")
            return router.dropped

        assert run(scenario()) == 1

    def test_crashed_destination_drops(self):
        async def scenario():
            router = Router()
            router.register(1)
            router.crash(1)
            await router.send(0, 1, "lost")
            return router.dropped

        assert run(scenario()) == 1

    def test_channel_empty(self):
        async def scenario():
            channel = Channel.create(3)
            empty_before = channel.empty()
            await channel.put(0, "x")
            return empty_before, channel.empty()

        before, after = run(scenario())
        assert before and not after


class TestAsyncCluster:
    @pytest.mark.parametrize("protocol", ["tempo", "atlas", "fpaxos"])
    def test_submit_and_await_reply(self, protocol):
        async def scenario():
            options = AsyncClusterOptions(protocol=protocol, num_processes=3, faults=1)
            async with AsyncCluster(options) as cluster:
                reply = await cluster.submit(["alpha"], process_id=0)
                await asyncio.sleep(0.1)
                return reply, cluster.value_of("alpha"), cluster.stores_agree()

        reply, value, agree = run(scenario())
        assert reply is not None
        assert value is not None
        assert agree

    def test_concurrent_conflicting_submissions_converge(self):
        async def scenario():
            options = AsyncClusterOptions(protocol="tempo", num_processes=3, faults=1)
            async with AsyncCluster(options) as cluster:
                replies = await cluster.submit_many([["hot"]] * 6 + [["cold"]] * 3)
                await asyncio.sleep(0.2)
                counts = cluster.executed_counts()
                return replies, counts, cluster.stores_agree()

        replies, counts, agree = run(scenario())
        assert len(replies) == 9
        assert agree
        assert all(count == 9 for count in counts.values())

    def test_executions_match_across_replicas_with_latency(self):
        async def scenario():
            options = AsyncClusterOptions(
                protocol="tempo", num_processes=3, faults=1, latency_seconds=0.002
            )
            async with AsyncCluster(options) as cluster:
                await cluster.submit_many([["k1"], ["k2"], ["k1"]])
                await asyncio.sleep(0.3)
                orders = {
                    tuple(str(dot) for dot, _ in process.executed)
                    for process in cluster.processes
                }
                return orders

        orders = run(scenario())
        assert len(orders) == 1

    def test_cluster_can_be_restarted(self):
        async def scenario():
            cluster = AsyncCluster(AsyncClusterOptions(num_processes=3))
            await cluster.start()
            await cluster.submit(["x"])
            await cluster.stop()
            # Starting again after a stop must not raise.
            await cluster.start()
            await cluster.stop()
            return True

        assert run(scenario())
