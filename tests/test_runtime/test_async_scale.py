"""Large closed-loop scenarios on the asyncio runtime.

The virtual-clock event loop (:mod:`repro.runtime.virtual_clock`) makes
injected latency free in wall time, so these scenarios run hundreds of
client round trips — the scale the north star asks for — in milliseconds.
"""

from __future__ import annotations

import asyncio

from repro.runtime import AsyncCluster, AsyncClusterOptions, run_with_virtual_clock


def run(coro):
    return run_with_virtual_clock(coro)


class TestClosedLoopScale:
    def test_120_closed_loop_clients_with_injected_latency(self):
        """120 closed-loop clients, 3 commands each, 2 ms injected one-way
        latency, a shared hot key driving contention: every submission is
        answered, every replica executes every command, stores converge."""

        clients = 120
        rounds = 3

        async def scenario():
            options = AsyncClusterOptions(
                protocol="tempo",
                num_processes=5,
                faults=1,
                latency_seconds=0.002,
            )
            async with AsyncCluster(options) as cluster:

                async def closed_loop(client_id: int):
                    replies = []
                    for round_index in range(rounds):
                        if (client_id + round_index) % 4 == 0:
                            keys = ["hot"]
                        else:
                            keys = [f"k-{client_id}-{round_index}"]
                        reply = await cluster.submit(
                            keys,
                            process_id=client_id % options.num_processes,
                            timeout=60.0,
                        )
                        replies.append(reply)
                    return replies

                all_replies = await asyncio.gather(
                    *(closed_loop(client) for client in range(clients))
                )
                # Let trailing commit broadcasts drain everywhere.
                await asyncio.sleep(1.0)
                return (
                    all_replies,
                    cluster.executed_counts(),
                    cluster.stores_agree(),
                )

        all_replies, counts, agree = run(scenario())
        total = clients * rounds
        assert len(all_replies) == clients
        assert all(len(replies) == rounds for replies in all_replies)
        assert agree
        assert all(count == total for count in counts.values()), counts

    def test_contended_closed_loop_on_dependency_protocol(self):
        """The same closed-loop shape on Atlas: the dependency-tracking
        path (conflict summaries + pruning) under concurrent load."""

        clients = 40
        rounds = 2

        async def scenario():
            options = AsyncClusterOptions(
                protocol="atlas",
                num_processes=3,
                faults=1,
                latency_seconds=0.001,
            )
            async with AsyncCluster(options) as cluster:

                async def closed_loop(client_id: int):
                    replies = []
                    for round_index in range(rounds):
                        keys = (
                            ["hot"]
                            if client_id % 2 == 0
                            else [f"k-{client_id}-{round_index}"]
                        )
                        replies.append(
                            await cluster.submit(
                                keys,
                                process_id=client_id % options.num_processes,
                                timeout=60.0,
                            )
                        )
                    return replies

                all_replies = await asyncio.gather(
                    *(closed_loop(client) for client in range(clients))
                )
                await asyncio.sleep(1.0)
                footprints = [
                    process.conflict_footprint() for process in cluster.processes
                ]
                return all_replies, cluster.stores_agree(), footprints

        all_replies, agree, footprints = run(scenario())
        assert len(all_replies) == clients
        assert agree
        # The pruning scheme holds on the asyncio runtime too: everything
        # executed, so nothing stays in the live conflict window, and the
        # epoch-2 watermark GC drains the executed archive down to (at
        # most) a straggler tail still awaiting the final clock exchange.
        for footprint in footprints:
            assert footprint["live"] == 0, footprint
            assert footprint["archived"] <= clients, footprint
