"""Smoke tests for the framed byte stream transport (UDS and TCP).

These run on a real event loop — the point is to push actual frames
through actual sockets — but stay sub-second because everything is on
localhost.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.base import MBatch
from repro.runtime.channel import Channel, Router
from repro.runtime.transport import StreamConnection, StreamServer
from repro.runtime.virtual_clock import run_with_virtual_clock
from repro.wire import sample_messages


def _round_trip_messages():
    samples = sample_messages()
    return [samples["MPropose"], samples["MCommit"], samples["MBatch"]]


class TestUnixStream:
    def test_messages_survive_a_unix_socket(self, tmp_path):
        path = str(tmp_path / "wire.sock")
        messages = _round_trip_messages()

        async def scenario():
            channel = Channel.create(7)
            server = await StreamServer.serve_unix(channel, path)
            connection = await StreamConnection.open_unix(path)
            for index, message in enumerate(messages):
                await connection.send(index, message)
            received = [await channel.get() for _ in messages]
            await connection.close()
            await server.close()
            return received, server.frames_received, connection.bytes_sent

        received, frames, bytes_sent = asyncio.run(scenario())
        assert frames == len(messages)
        assert bytes_sent > 0
        for index, message in enumerate(messages):
            assert received[index] == (index, message)

    def test_truncated_stream_is_rejected_cleanly(self, tmp_path):
        path = str(tmp_path / "wire.sock")

        async def scenario():
            channel = Channel.create(7)
            server = await StreamServer.serve_unix(channel, path)
            reader, writer = await asyncio.open_unix_connection(path)
            # A frame length that promises more bytes than ever arrive.
            writer.write(bytes([3, 200]))
            writer.close()
            await writer.wait_closed()
            for _ in range(50):
                if server.decode_errors:
                    break
                await asyncio.sleep(0.01)
            await server.close()
            return server.decode_errors, channel.empty()

        decode_errors, empty = asyncio.run(scenario())
        assert decode_errors == 1
        assert empty

    def test_tcp_round_trip(self):
        messages = _round_trip_messages()

        async def scenario():
            channel = Channel.create(9)
            server = await StreamServer.serve_tcp(channel)
            connection = await StreamConnection.open_tcp("127.0.0.1", server.tcp_port)
            for message in messages:
                await connection.send(3, message)
            received = [await channel.get() for _ in messages]
            await connection.close()
            await server.close()
            return received

        received = asyncio.run(scenario())
        assert received == [(3, message) for message in messages]


class TestRouterWireMode:
    def test_router_ships_frames_and_channel_decodes(self):
        samples = sample_messages()
        message = samples["MCommit"]
        batch = MBatch((samples["MStable"], samples["MConsensusAck"]))

        async def scenario():
            router = Router(wire_bytes=True)
            channel = router.register(1)
            await router.send(0, 1, message)
            await router.send(0, 1, batch)
            # Non-message payloads must pass through untouched.
            await router.send(0, 1, "plain")
            first = await channel.get()
            second = await channel.get()
            third = await channel.get()
            return first, second, third, router.bytes_shipped

        first, second, third, shipped = run_with_virtual_clock(scenario())
        assert first == (0, message)
        assert second == (0, batch)
        assert third == (0, "plain")
        assert shipped > 0

    def test_wire_mode_off_keeps_object_identity(self):
        samples = sample_messages()
        message = samples["MCommit"]

        async def scenario():
            router = Router()
            channel = router.register(1)
            await router.send(0, 1, message)
            _, received = await channel.get()
            return received is message, router.bytes_shipped

        same_object, shipped = run_with_virtual_clock(scenario())
        assert same_object
        assert shipped == 0
