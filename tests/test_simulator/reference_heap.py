"""Reference single-heap event queue: the determinism witness.

This is the seed scheduler — one binary heap over *every* event, ordered by
``(time, insertion counter)`` — preserved as a drop-in replacement for
:class:`repro.simulator.events.EventQueue`.  It exists so the determinism
test (``test_scheduler_witness.py``) can run the same simulation under both
schedulers and assert the event traces are identical: the timestamp-lane
queue must order events exactly as the flat heap's ``(time, sequence)``
tiebreak did, by construction.

Not optimised — correctness reference only.
"""

from __future__ import annotations

import itertools
from collections import deque
from heapq import heappop, heappush
from typing import Any, Deque, Iterator, List, Optional, Tuple

from repro.simulator.events import Event, EventKind

_MESSAGE = EventKind.MESSAGE

#: Base for the insertion counters handed out by :meth:`requeue_lane`:
#: far below any normal counter, so requeued events order ahead of
#: everything pushed at the same timestamp since the lane was popped.
_REQUEUE_BASE = -(10**12)


class HeapEventQueue:
    """Flat-heap scheduler with the :class:`EventQueue` public API."""

    def __init__(self) -> None:
        #: Entries are ``(time, sequence, kind, target, payload, sender)``.
        self._heap: List[Tuple] = []
        self._counter = itertools.count()
        self._requeue_counter = itertools.count(_REQUEUE_BASE)
        self.heap_ops = 0

    # -- scheduling -----------------------------------------------------------

    def push(
        self,
        time: float,
        kind: EventKind,
        target: int = -1,
        payload: Any = None,
        sender: int = -1,
    ) -> Event:
        if time < 0:
            raise ValueError("event time must be non-negative")
        heappush(
            self._heap, (time, next(self._counter), kind, target, payload, sender)
        )
        self.heap_ops += 1
        return Event(time, kind, target, payload, sender)

    def schedule_message(
        self, at: float, sender: int, destination: int, payload: Any
    ) -> None:
        heappush(
            self._heap,
            (at, next(self._counter), _MESSAGE, destination, payload, sender),
        )
        self.heap_ops += 1

    # -- consumption ----------------------------------------------------------

    def pop(self) -> Optional[Event]:
        if not self._heap:
            return None
        time, _, kind, target, payload, sender = heappop(self._heap)
        self.heap_ops += 1
        return Event(time, kind, target, payload, sender)

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def pop_lane(
        self, horizon: Optional[float] = None
    ) -> Optional[Tuple[float, Deque[Tuple]]]:
        """Every event at the earliest timestamp, in ``(time, sequence)``
        order — the flat-heap equivalent of one timestamp lane."""
        heap = self._heap
        if not heap:
            return None
        time = heap[0][0]
        if horizon is not None and time > horizon:
            return None
        lane: Deque[Tuple] = deque()
        while heap and heap[0][0] == time:
            _, _, kind, target, payload, sender = heappop(heap)
            self.heap_ops += 1
            lane.append((time, kind, target, payload, sender))
        return time, lane

    def requeue_lane(self, time: float, events) -> None:
        for event in events:
            heappush(
                self._heap,
                (time, next(self._requeue_counter)) + tuple(event[1:]),
            )
            self.heap_ops += 1

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[Event]:
        while self._heap:
            event = self.pop()
            if event is not None:
                yield event
