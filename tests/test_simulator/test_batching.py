"""Tests of the same-destination message batching layer.

Covers the MBatch envelope semantics: send order is preserved inside a
batch, batches never span more than one event-handling step, stats count
inner messages, and jitter/drop injection falls back to per-message
behaviour.  The message-traffic regression test for the commit-request
debounce lives in ``tests/test_experiments/test_message_traffic.py``.
"""

from __future__ import annotations

from repro.core.base import MBatch, ProcessBase
from repro.core.config import ProtocolConfig
from repro.simulator.events import EventKind
from repro.simulator.latency import uniform_latency_matrix
from repro.simulator.network import Network, NetworkOptions
from repro.simulator.rng import SeededRng
from repro.simulator.sim import Simulation, SimulationOptions


class RecordingProcess(ProcessBase):
    """Counts deliveries and can emit scripted envelopes."""

    def __init__(self, process_id, config):
        super().__init__(process_id, config)
        self.seen = []
        self.to_send = []

    def submit(self, command, now=0.0):
        # A submission is the scripted "send several messages" step.
        for destinations, message in self.to_send:
            self.send(destinations, message, now)
        self.to_send = []

    def on_message(self, sender, message, now):
        self.seen.append((sender, message, now))


def build(num_processes=3, **network_options):
    config = ProtocolConfig(num_processes=num_processes, faults=1)
    processes = [
        RecordingProcess(process_id, config) for process_id in range(num_processes)
    ]
    sites = [chr(ord("a") + index) for index in range(num_processes)]
    matrix = uniform_latency_matrix(sites, one_way_ms=10.0)
    network = Network(matrix, NetworkOptions(**network_options), rng=SeededRng(7))
    for process_id, site in zip(range(num_processes), sites):
        network.place(process_id, site)
    simulation = Simulation(
        processes, network, SimulationOptions(tick_interval=1000.0, max_time=10_000.0)
    )
    return processes, simulation


class TestBatchDelivery:
    def test_same_destination_messages_coalesce_into_one_event(self):
        processes, simulation = build()
        processes[0].to_send = [([1], "m1"), ([1], "m2"), ([1], "m3")]
        simulation.submit_at(0.0, 0, None)
        simulation.run(until=50.0)
        # One MESSAGE event carried all three messages...
        assert simulation.network.stats.batches_sent == 1
        assert simulation.network.stats.messages_sent == 3
        # ...and dispatch preserved the send order at one instant.
        assert [message for _, message, _ in processes[1].seen] == ["m1", "m2", "m3"]
        assert len({now for _, _, now in processes[1].seen}) == 1

    def test_batches_group_per_destination(self):
        processes, simulation = build()
        processes[0].to_send = [([1], "a1"), ([2], "b1"), ([1], "a2"), ([2], "b2")]
        simulation.submit_at(0.0, 0, None)
        simulation.run(until=50.0)
        assert [message for _, message, _ in processes[1].seen] == ["a1", "a2"]
        assert [message for _, message, _ in processes[2].seen] == ["b1", "b2"]
        assert simulation.network.stats.batches_sent == 2

    def test_batches_never_cross_an_event_boundary(self):
        processes, simulation = build()
        # Two separate submission events, each sending to the same
        # destination: the messages of different steps must arrive as two
        # deliveries (same in-flight latency, distinct send steps).
        processes[0].to_send = [([1], "step1-a"), ([1], "step1-b")]
        simulation.submit_at(0.0, 0, None)
        simulation.run(until=5.0)
        processes[0].to_send = [([1], "step2-a"), ([1], "step2-b")]
        simulation.submit_at(6.0, 0, None)
        simulation.run(until=50.0)
        times = [now for _, _, now in processes[1].seen]
        assert [message for _, message, _ in processes[1].seen] == [
            "step1-a", "step1-b", "step2-a", "step2-b",
        ]
        assert times[0] == times[1] < times[2] == times[3]
        assert simulation.network.stats.batches_sent == 2

    def test_single_message_is_not_wrapped(self):
        processes, simulation = build()
        processes[0].to_send = [([1], "solo")]
        simulation.submit_at(0.0, 0, None)
        simulation.run(until=50.0)
        assert simulation.network.stats.batches_sent == 0
        assert processes[1].seen[0][1] == "solo"

    def test_deliver_counts_inner_messages(self):
        config = ProtocolConfig(num_processes=3, faults=1)
        process = RecordingProcess(1, config)
        process.deliver(0, MBatch(("x", "y")), 1.0)
        assert process.message_counts == {"str": 2}
        assert [message for _, message, _ in process.seen] == ["x", "y"]

    def test_crashed_process_drops_whole_batch(self):
        config = ProtocolConfig(num_processes=3, faults=1)
        process = RecordingProcess(1, config)
        process.crash()
        process.deliver(0, MBatch(("x", "y")), 1.0)
        assert process.seen == []
        assert process.message_counts == {}


class TestBatchNetworkSemantics:
    def test_jitter_falls_back_to_per_message_delivery(self):
        deliveries = []
        processes, simulation = build(jitter_ms=5.0)
        network = simulation.network
        network.transmit_batch(
            0, 1, ["m1", "m2", "m3"], 0.0,
            lambda at, sender, destination, message: deliveries.append((at, message)),
        )
        # Three separate deliveries, no MBatch wrapper, distinct jitter draws.
        assert len(deliveries) == 3
        assert all(not isinstance(message, MBatch) for _, message in deliveries)
        assert network.stats.batches_sent == 0
        assert len({at for at, _ in deliveries}) > 1

    def test_drops_are_applied_per_message(self):
        deliveries = []
        processes, simulation = build(drop_probability=0.5)
        network = simulation.network
        network.transmit_batch(
            0, 1, [f"m{index}" for index in range(32)], 0.0,
            lambda at, sender, destination, message: deliveries.append(message),
        )
        stats = network.stats
        assert stats.messages_sent == 32
        assert 0 < stats.messages_dropped < 32
        survivors = (
            list(deliveries[0].messages)
            if len(deliveries) == 1 and isinstance(deliveries[0], MBatch)
            else deliveries
        )
        assert stats.messages_delivered == len(survivors)
        # Order of survivors is the send order.
        assert survivors == sorted(survivors, key=lambda m: int(m[1:]))

    def test_crashed_destination_counts_every_message_dropped(self):
        processes, simulation = build()
        network = simulation.network
        network.crash(1)
        result = network.transmit_batch(
            0, 1, ["m1", "m2"], 0.0, lambda *args: (_ for _ in ()).throw(AssertionError)
        )
        assert result is None
        assert network.stats.messages_dropped == 2

    def test_external_endpoints_receive_unpacked_messages(self):
        processes, simulation = build()
        received = []
        simulation.network.place(-1, "a")
        simulation.register_external(
            -1, lambda sender, message, now: received.append(message)
        )
        processes[0].to_send = [([-1], "r1"), ([-1], "r2")]
        simulation.submit_at(0.0, 0, None)
        simulation.run(until=50.0)
        assert received == ["r1", "r2"]


class TestBatchStatsFastPath:
    """``transmit_batch`` counts runs of same-type inner messages at once;
    the resulting ``NetworkStats`` must be indistinguishable from routing
    every message through ``transmit`` individually."""

    def _mixed_messages(self):
        from repro.core.identifiers import Dot
        from repro.core.messages import MCommitRequest, MConsensusAck, MStable
        from repro.protocols.dep_messages import MPreAcceptAck

        dot = Dot(0, 1)
        # Two runs of fixed-size kinds, one variable-size kind, singletons.
        return [
            MConsensusAck(dot, 1),
            MConsensusAck(dot, 2),
            MConsensusAck(dot, 3),
            MPreAcceptAck(dot, frozenset({Dot(1, 1), Dot(2, 1)}), 4),
            MStable(dot, 0),
            MCommitRequest(dot),
            MCommitRequest(dot),
        ]

    def test_batched_stats_match_per_message_transmit(self):
        messages = self._mixed_messages()
        deliveries = []

        def deliver(at, sender, destination, message):
            deliveries.append((at, message))

        _, batched_sim = build()
        batched = batched_sim.network
        batched.transmit_batch(0, 1, messages, 0.0, deliver)

        _, reference_sim = build()
        reference = reference_sim.network
        for message in messages:
            reference.transmit(0, 1, message, 0.0, deliver)

        assert batched.stats.messages_sent == reference.stats.messages_sent
        assert batched.stats.messages_delivered == reference.stats.messages_delivered
        assert batched.stats.bytes_sent == reference.stats.bytes_sent
        assert batched.stats.per_kind == reference.stats.per_kind
        # The only permitted difference: one MBatch delivery event.
        assert batched.stats.batches_sent == 1
        assert reference.stats.batches_sent == 0

    def test_fast_path_preserves_message_order_in_the_batch(self):
        from repro.core.base import MBatch

        messages = self._mixed_messages()
        deliveries = []

        def deliver(at, sender, destination, message):
            deliveries.append(message)

        _, simulation = build()
        simulation.network.transmit_batch(0, 1, messages, 0.0, deliver)
        assert len(deliveries) == 1
        assert isinstance(deliveries[0], MBatch)
        assert list(deliveries[0].messages) == messages

    def test_inline_transmit_accounting_matches_count_message(self):
        """``transmit`` inlines the body of ``_count_message`` for speed;
        this pins the two copies together: the inline accounting must stay
        byte-for-byte equivalent to routing the same messages through the
        method (which the jittery/droppy ``transmit_batch`` path still
        uses)."""
        messages = self._mixed_messages()

        _, inline_sim = build()
        inline = inline_sim.network
        for message in messages:
            inline.transmit(0, 1, message, 0.0, lambda *args: None)

        _, method_sim = build()
        method = method_sim.network
        for message in messages:
            method._count_message(message)

        assert inline.stats.messages_sent == method.stats.messages_sent
        assert inline.stats.bytes_sent == method.stats.bytes_sent
        assert inline.stats.per_kind == method.stats.per_kind

    def test_jitter_still_uses_the_per_message_path(self):
        messages = self._mixed_messages()
        deliveries = []

        def deliver(at, sender, destination, message):
            deliveries.append(message)

        _, simulation = build(jitter_ms=1.0)
        network = simulation.network
        network.transmit_batch(0, 1, messages, 0.0, deliver)
        # Per-message deliveries, no MBatch envelope.
        assert len(deliveries) == len(messages)
        assert network.stats.batches_sent == 0
        assert network.stats.messages_sent == len(messages)
