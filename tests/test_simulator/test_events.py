"""Unit tests for the simulator event queue."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.simulator.events import EventKind, EventQueue


class TestEventQueue:
    def test_events_pop_in_time_order(self):
        queue = EventQueue()
        queue.push(5.0, EventKind.TICK, target=1)
        queue.push(1.0, EventKind.MESSAGE, target=2)
        queue.push(3.0, EventKind.CLIENT, target=3)
        times = [queue.pop().time for _ in range(3)]
        assert times == [1.0, 3.0, 5.0]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        first = queue.push(2.0, EventKind.MESSAGE, target=1)
        second = queue.push(2.0, EventKind.MESSAGE, target=2)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_pop_on_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(7.5, EventKind.TICK)
        assert queue.peek_time() == 7.5

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue and len(queue) == 0
        queue.push(1.0, EventKind.TICK)
        assert queue and len(queue) == 1
        queue.pop()
        assert not queue

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, EventKind.TICK)

    def test_iteration_drains_in_order(self):
        queue = EventQueue()
        for time in (4.0, 2.0, 9.0):
            queue.push(time, EventKind.CUSTOM)
        assert [event.time for event in queue] == [2.0, 4.0, 9.0]
        assert len(queue) == 0

    @given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=200))
    def test_always_sorted(self, times):
        queue = EventQueue()
        for time in times:
            queue.push(time, EventKind.MESSAGE)
        popped = [queue.pop().time for _ in range(len(times))]
        assert popped == sorted(times)

    def test_event_payload_and_sender_are_preserved(self):
        queue = EventQueue()
        queue.push(1.0, EventKind.MESSAGE, target=3, payload="hello", sender=7)
        event = queue.pop()
        assert event.payload == "hello"
        assert event.sender == 7
        assert event.target == 3
        assert event.kind is EventKind.MESSAGE
