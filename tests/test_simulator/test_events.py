"""Unit and property tests for the timestamp-lane simulator event queue."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.simulator.events import Event, EventKind, EventQueue


class TestEventQueue:
    def test_events_pop_in_time_order(self):
        queue = EventQueue()
        queue.push(5.0, EventKind.TICK, target=1)
        queue.push(1.0, EventKind.MESSAGE, target=2)
        queue.push(3.0, EventKind.CLIENT, target=3)
        times = [queue.pop().time for _ in range(3)]
        assert times == [1.0, 3.0, 5.0]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        first = queue.push(2.0, EventKind.MESSAGE, target=1)
        second = queue.push(2.0, EventKind.MESSAGE, target=2)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_pop_on_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(7.5, EventKind.TICK)
        assert queue.peek_time() == 7.5

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue and len(queue) == 0
        queue.push(1.0, EventKind.TICK)
        assert queue and len(queue) == 1
        queue.pop()
        assert not queue

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, EventKind.TICK)

    def test_iteration_drains_in_order(self):
        queue = EventQueue()
        for time in (4.0, 2.0, 9.0):
            queue.push(time, EventKind.CUSTOM)
        assert [event.time for event in queue] == [2.0, 4.0, 9.0]
        assert len(queue) == 0

    @given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=200))
    def test_always_sorted(self, times):
        queue = EventQueue()
        for time in times:
            queue.push(time, EventKind.MESSAGE)
        popped = [queue.pop().time for _ in range(len(times))]
        assert popped == sorted(times)

    def test_event_payload_and_sender_are_preserved(self):
        queue = EventQueue()
        queue.push(1.0, EventKind.MESSAGE, target=3, payload="hello", sender=7)
        event = queue.pop()
        assert event.payload == "hello"
        assert event.sender == 7
        assert event.target == 3
        assert event.kind is EventKind.MESSAGE

    def test_schedule_message_pops_as_normalised_event(self):
        queue = EventQueue()
        queue.schedule_message(2.5, 4, 9, "payload")
        event = queue.pop()
        assert type(event) is Event
        assert event == Event(2.5, EventKind.MESSAGE, 9, "payload", 4)

    def test_schedule_message_is_validation_free(self):
        """The hot path deliberately skips the ``time >= 0`` check (network
        delays are non-negative by construction); only ``push`` validates."""
        queue = EventQueue()
        queue.schedule_message(-1.0, 0, 1, None)  # accepted, not rejected
        assert queue.pop().time == -1.0
        with pytest.raises(ValueError):
            queue.push(-1.0, EventKind.MESSAGE)

    def test_pop_lane_returns_whole_timestamp_in_fifo_order(self):
        queue = EventQueue()
        queue.push(1.0, EventKind.MESSAGE, target=1)
        queue.schedule_message(1.0, 5, 2, None)
        queue.push(1.0, EventKind.TICK, target=3)
        queue.push(2.0, EventKind.MESSAGE, target=4)
        time, lane = queue.pop_lane()
        assert time == 1.0
        assert [event[2] for event in lane] == [1, 2, 3]
        assert len(queue) == 1
        assert queue.peek_time() == 2.0

    def test_pop_lane_respects_horizon(self):
        queue = EventQueue()
        queue.push(10.0, EventKind.TICK)
        assert queue.pop_lane(horizon=5.0) is None
        assert len(queue) == 1
        time, lane = queue.pop_lane(horizon=10.0)
        assert time == 10.0 and len(lane) == 1

    def test_requeue_lane_restores_order_ahead_of_new_pushes(self):
        queue = EventQueue()
        for target in (1, 2, 3):
            queue.push(1.0, EventKind.MESSAGE, target=target)
        time, lane = queue.pop_lane()
        first = lane.popleft()
        assert first.target == 1
        # An event scheduled at the same instant while the lane is owned by
        # the caller (as the simulation loop owns it) ...
        queue.push(1.0, EventKind.MESSAGE, target=9)
        # ... must come after the requeued remainder.
        queue.requeue_lane(time, lane)
        assert [queue.pop().target for _ in range(3)] == [2, 3, 9]

    def test_requeue_empty_lane_is_a_no_op(self):
        """An exhausted lane must not register a phantom timestamp."""
        queue = EventQueue()
        queue.push(1.0, EventKind.TICK)
        time, lane = queue.pop_lane()
        lane.popleft()
        queue.requeue_lane(time, lane)
        assert queue.peek_time() is None and len(queue) == 0
        queue.push(2.0, EventKind.TICK)
        assert queue.pop().time == 2.0

    def test_heap_ops_counts_lane_creation_and_retirement(self):
        queue = EventQueue()
        for _ in range(10):
            queue.schedule_message(1.0, 0, 1, None)
        assert queue.heap_ops == 1  # ten events, one lane insert
        queue.pop_lane()
        assert queue.heap_ops == 2  # ... and one lane retirement


class TestEventQueueProperties:
    """Hypothesis properties of the two-level scheduler."""

    @given(st.lists(st.integers(min_value=0, max_value=5), max_size=200))
    def test_fifo_within_a_timestamp(self, markers):
        queue = EventQueue()
        for index, _ in enumerate(markers):
            queue.schedule_message(1.0, 0, index, None)
        popped = [queue.pop().target for _ in range(len(markers))]
        assert popped == list(range(len(markers)))

    @given(
        st.lists(
            st.tuples(st.sampled_from([0.0, 0.25, 5.0, 36.0, 70.5]), st.integers()),
            max_size=200,
        )
    )
    def test_global_time_order_across_lanes_is_a_stable_sort(self, items):
        queue = EventQueue()
        for time, marker in items:
            queue.push(time, EventKind.MESSAGE, payload=marker)
        drained = [(event.time, event.payload) for event in queue]
        assert drained == sorted(items, key=lambda item: item[0])
        assert len(queue) == 0

    @given(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("push"),
                    st.floats(min_value=0, max_value=100),
                ),
                st.tuples(st.just("pop"), st.none()),
            ),
            max_size=300,
        )
    )
    def test_interleaved_push_pop_matches_a_sorted_model(self, operations):
        queue = EventQueue()
        model = []  # (time, global insertion order)
        counter = 0
        for operation, time in operations:
            if operation == "push":
                queue.push(time, EventKind.MESSAGE, payload=counter)
                model.append((time, counter))
                counter += 1
            else:
                expected = min(model, key=lambda item: (item[0], item[1]), default=None)
                event = queue.pop()
                if expected is None:
                    assert event is None
                else:
                    assert (event.time, event.payload) == expected
                    model.remove(expected)
            assert len(queue) == len(model)
            head = min(model, key=lambda item: (item[0], item[1]), default=None)
            assert queue.peek_time() == (head[0] if head else None)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=120))
    def test_drain_iterator_consumes_in_time_order(self, times):
        queue = EventQueue()
        for time in times:
            queue.push(time, EventKind.CUSTOM)
        assert [event.time for event in queue] == sorted(times)
        assert not queue and queue.pop() is None
