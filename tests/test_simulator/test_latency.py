"""Unit tests for the EC2 latency data (Table 2) and latency matrices."""

from __future__ import annotations

import pytest

from repro.simulator.latency import (
    EC2_PING_LATENCIES,
    EC2_REGIONS,
    LatencyMatrix,
    ec2_latency_matrix,
    uniform_latency_matrix,
)


class TestTable2Data:
    def test_all_five_regions_present(self):
        assert set(EC2_REGIONS) == {
            "ireland",
            "n-california",
            "singapore",
            "canada",
            "sao-paulo",
        }

    def test_ping_matrix_is_symmetric(self):
        for a in EC2_REGIONS:
            for b in EC2_REGIONS:
                assert EC2_PING_LATENCIES[a][b] == EC2_PING_LATENCIES[b][a]

    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("ireland", "n-california", 141.0),
            ("ireland", "singapore", 186.0),
            ("ireland", "canada", 72.0),
            ("ireland", "sao-paulo", 183.0),
            ("n-california", "singapore", 181.0),
            ("n-california", "canada", 78.0),
            ("n-california", "sao-paulo", 190.0),
            ("singapore", "canada", 221.0),
            ("singapore", "sao-paulo", 338.0),
            ("canada", "sao-paulo", 123.0),
        ],
    )
    def test_values_match_table2(self, a, b, expected):
        assert EC2_PING_LATENCIES[a][b] == expected

    def test_ping_range_matches_paper_statement(self):
        """§6.2: average ping latencies range from 72ms to 338ms."""
        cross = [
            EC2_PING_LATENCIES[a][b]
            for a in EC2_REGIONS
            for b in EC2_REGIONS
            if a != b
        ]
        assert min(cross) == 72.0
        assert max(cross) == 338.0


class TestLatencyMatrix:
    def test_one_way_is_half_the_ping(self):
        matrix = ec2_latency_matrix()
        assert matrix.latency("ireland", "canada") == 36.0
        assert matrix.rtt("ireland", "canada") == 72.0

    def test_local_latency_is_small(self):
        matrix = ec2_latency_matrix()
        assert matrix.latency("ireland", "ireland") < 1.0

    def test_closest_sites_for_ireland(self):
        matrix = ec2_latency_matrix()
        assert matrix.closest_sites("ireland", 2) == ["canada", "n-california"]

    def test_quorum_latency_matches_fast_path_expectations(self):
        matrix = ec2_latency_matrix()
        # Fast quorum of size 3 for Ireland: {Ireland, Canada, N.California};
        # the round trip is bounded by the farthest member.
        assert matrix.quorum_latency("ireland", 3) == pytest.approx(141.0)
        assert matrix.quorum_latency("canada", 3) == pytest.approx(78.0)
        assert matrix.quorum_latency("singapore", 3) == pytest.approx(186.0)

    def test_quorum_of_one_is_free(self):
        matrix = ec2_latency_matrix()
        assert matrix.quorum_latency("ireland", 1) == 0.0

    def test_average_rtt(self):
        matrix = ec2_latency_matrix()
        expected = (141.0 + 186.0 + 72.0 + 183.0) / 4
        assert matrix.average_rtt("ireland") == pytest.approx(expected)

    def test_missing_entries_are_rejected(self):
        with pytest.raises(ValueError):
            LatencyMatrix(sites=["a", "b"], one_way={"a": {"a": 1.0}})

    def test_uniform_matrix(self):
        matrix = uniform_latency_matrix(["x", "y", "z"], one_way_ms=10.0)
        assert matrix.latency("x", "y") == 10.0
        assert matrix.rtt("x", "z") == 20.0
        assert matrix.latency("x", "x") < 10.0

    def test_subset_of_regions(self):
        matrix = ec2_latency_matrix(["ireland", "canada", "n-california"])
        assert set(matrix.sites) == {"ireland", "canada", "n-california"}
