"""Tests for the dstat-style simulation monitor."""

from __future__ import annotations

import pytest

from repro.cluster.config import ExperimentConfig
from repro.core.commands import Partitioner
from repro.core.config import ProtocolConfig
from repro.core.process import TempoProcess
from repro.protocols.fpaxos import FPaxosProcess
from repro.simulator.inline import InlineNetwork
from repro.simulator.latency import uniform_latency_matrix
from repro.simulator.monitor import SimulationMonitor
from repro.simulator.network import Network
from repro.simulator.sim import Simulation, SimulationOptions


def build_simulation(protocol_cls, r=3):
    config = ProtocolConfig(num_processes=r, faults=1)
    partitioner = Partitioner(1)
    processes = [
        protocol_cls(process_id, config, partitioner=partitioner)
        for process_id in range(r)
    ]
    matrix = uniform_latency_matrix([f"s{index}" for index in range(r)], 5.0)
    network = Network(matrix)
    for process_id in range(r):
        network.place(process_id, f"s{process_id}")
    simulation = Simulation(processes, network, SimulationOptions(max_time=3_000.0))
    return processes, simulation


class TestSimulationMonitor:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            SimulationMonitor(interval_ms=0.0)

    def test_samples_are_collected_periodically(self):
        processes, simulation = build_simulation(TempoProcess)
        monitor = SimulationMonitor(interval_ms=50.0).attach(simulation)
        for index in range(5):
            command = processes[0].new_command([f"k{index}"])
            simulation.submit_at(float(index * 10), 0, command)
        simulation.run(until=1_000.0)
        series = monitor.series[0]
        assert len(series.samples) >= 5
        assert series.total_messages() > 0
        assert series.total_executed() == 5

    def test_summary_rows_cover_every_process(self):
        processes, simulation = build_simulation(TempoProcess)
        monitor = SimulationMonitor(interval_ms=100.0).attach(simulation)
        command = processes[0].new_command(["x"])
        simulation.submit_at(0.0, 0, command)
        simulation.run(until=500.0)
        rows = monitor.summary_rows()
        assert [row["process"] for row in rows] == [0, 1, 2]
        for row in rows:
            assert row["messages"] >= 0

    def test_fpaxos_leader_is_the_busiest_process(self):
        processes, simulation = build_simulation(FPaxosProcess)
        monitor = SimulationMonitor(interval_ms=100.0).attach(simulation)
        for index in range(12):
            submitter = processes[index % 3]
            command = submitter.new_command([f"k{index}"])
            simulation.submit_at(float(index * 5), submitter.process_id, command)
        simulation.run(until=2_000.0)
        assert monitor.busiest_process() == 0
        assert monitor.imbalance() > 1.2

    def test_tempo_load_is_balanced(self):
        processes, simulation = build_simulation(TempoProcess)
        monitor = SimulationMonitor(interval_ms=100.0).attach(simulation)
        for index in range(12):
            submitter = processes[index % 3]
            command = submitter.new_command([f"k{index}"])
            simulation.submit_at(float(index * 5), submitter.process_id, command)
        simulation.run(until=2_000.0)
        assert monitor.imbalance() < 1.3

    def test_observe_works_without_a_simulation(self):
        config = ProtocolConfig(num_processes=3, faults=1)
        partitioner = Partitioner(1)
        processes = [
            TempoProcess(process_id, config, partitioner=partitioner)
            for process_id in range(3)
        ]
        network = InlineNetwork(processes)
        monitor = SimulationMonitor(interval_ms=10.0)
        command = processes[0].new_command(["x"])
        processes[0].submit(command, 0.0)
        network.settle()
        monitor.observe(processes, now=100.0)
        assert monitor.series[0].samples[-1].executed == 1
