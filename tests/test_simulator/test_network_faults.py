"""Unit tests for the network's per-link fault state.

Partitions, flaky-link degradation windows and message-class-targeted loss
are the :class:`repro.faults` primitives at the transport layer; these
tests drive :meth:`Network.transmit` directly and assert on what ``deliver``
sees.  The RNG-isolation tests pin the contract the cluster-level
determinism test relies on: healthy traffic never draws from the dedicated
fault stream, and fault draws never advance the main stream.
"""

from __future__ import annotations

import pytest

from repro.core.identifiers import intern_dot
from repro.core.messages import MCommitRequest, MStable
from repro.simulator.latency import ec2_latency_matrix
from repro.simulator.network import (
    LinkDegradation,
    Network,
    NetworkOptions,
    TargetedLoss,
)
from repro.simulator.rng import FAULT_RNG_STREAM, SeededRng

SITES = ["ireland", "canada", "singapore"]


def make_network(**options) -> Network:
    network = Network(
        ec2_latency_matrix(SITES), NetworkOptions(**options), rng=SeededRng(1)
    )
    for endpoint, site in enumerate(SITES):
        network.place(endpoint, site)
    return network


def transmit(network: Network, sender: int, destination: int, message=None):
    """Route one message; return the delivery time or None (dropped)."""
    delivered = []
    message = message if message is not None else MCommitRequest(intern_dot(0, 1))
    at = network.transmit(
        sender,
        destination,
        message,
        0.0,
        lambda when, *_: delivered.append(when),
    )
    assert (at is None) == (not delivered)
    return at


class TestPartition:
    def test_cross_group_messages_are_dropped(self):
        network = make_network()
        network.set_partition([("ireland",), ("canada", "singapore")])
        assert transmit(network, 0, 1) is None
        assert transmit(network, 1, 0) is None

    def test_same_group_messages_deliver(self):
        network = make_network()
        network.set_partition([("ireland",), ("canada", "singapore")])
        assert transmit(network, 1, 2) is not None

    def test_unlisted_sites_reach_everyone(self):
        network = make_network()
        network.set_partition([("ireland",), ("canada",)])
        assert transmit(network, 2, 0) is not None
        assert transmit(network, 0, 2) is not None

    def test_heal_restores_delivery(self):
        network = make_network()
        network.set_partition([("ireland",), ("canada", "singapore")])
        network.clear_partition()
        assert transmit(network, 0, 1) is not None
        assert not network._faults_active

    def test_unknown_site_and_duplicate_site_are_rejected(self):
        network = make_network()
        with pytest.raises(KeyError):
            network.set_partition([("ireland",), ("atlantis",)])
        with pytest.raises(ValueError):
            network.set_partition([("ireland",), ("ireland", "canada")])


class TestLinkDegradation:
    def test_extra_delay_is_added_both_ways(self):
        network = make_network()
        base = network.delay(0, 1)
        network.degrade_link("ireland", "canada", LinkDegradation(extra_delay_ms=30.0))
        assert transmit(network, 0, 1) == pytest.approx(base + 30.0)
        assert transmit(network, 1, 0) == pytest.approx(base + 30.0)

    def test_other_links_are_unaffected(self):
        network = make_network()
        base = network.delay(0, 2)
        network.degrade_link("ireland", "canada", LinkDegradation(extra_delay_ms=30.0))
        assert transmit(network, 0, 2) == pytest.approx(base)

    def test_jitter_is_bounded_and_varies(self):
        network = make_network()
        base = network.delay(0, 1)
        network.degrade_link(
            "ireland", "canada", LinkDegradation(extra_delay_ms=10.0, jitter_ms=5.0)
        )
        delays = {transmit(network, 0, 1) for _ in range(20)}
        assert all(base + 10.0 <= delay <= base + 15.0 for delay in delays)
        assert len(delays) > 1

    def test_certain_drop(self):
        network = make_network()
        network.degrade_link(
            "ireland", "canada", LinkDegradation(drop_probability=1.0)
        )
        assert transmit(network, 0, 1) is None
        assert network.stats.messages_dropped == 1

    def test_restore_link_ends_the_window(self):
        network = make_network()
        base = network.delay(0, 1)
        network.degrade_link("ireland", "canada", LinkDegradation(extra_delay_ms=30.0))
        network.restore_link("canada", "ireland")  # order-insensitive key
        assert transmit(network, 0, 1) == pytest.approx(base)
        assert not network._faults_active

    def test_validation(self):
        network = make_network()
        with pytest.raises(ValueError):
            LinkDegradation(drop_probability=1.5)
        with pytest.raises(ValueError):
            network.degrade_link("ireland", "ireland", LinkDegradation(1.0))


class TestTargetedLoss:
    def test_only_the_targeted_kind_is_dropped(self):
        network = make_network()
        network.set_targeted_loss("MStable", TargetedLoss(probability=1.0))
        assert transmit(network, 0, 1, MStable(intern_dot(0, 1))) is None
        assert transmit(network, 0, 1, MCommitRequest(intern_dot(0, 1))) is not None

    def test_cross_group_only_spares_intra_group_copies(self):
        network = make_network()
        network.set_group(0, 0)
        network.set_group(1, 0)
        network.set_group(2, 1)
        network.set_targeted_loss(
            "MStable", TargetedLoss(probability=1.0, cross_group_only=True)
        )
        stable = MStable(intern_dot(0, 1))
        assert transmit(network, 0, 1, stable) is not None  # same group
        assert transmit(network, 0, 2, stable) is None  # crosses groups

    def test_clear_restores_the_kind(self):
        network = make_network()
        network.set_targeted_loss("MStable", TargetedLoss(probability=1.0))
        network.clear_targeted_loss("MStable")
        assert transmit(network, 0, 1, MStable(intern_dot(0, 1))) is not None
        assert not network._faults_active

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            TargetedLoss(probability=0.0)


class TestFaultRngIsolation:
    def test_healthy_traffic_never_draws_from_the_fault_stream(self):
        network = make_network()
        for _ in range(100):
            assert transmit(network, 0, 1) is not None
        # The fault stream is untouched: it still produces the same values
        # as a freshly forked twin.
        twin = SeededRng(1).fault_stream()
        assert [network.fault_rng.uniform() for _ in range(4)] == [
            twin.uniform() for _ in range(4)
        ]

    def test_fault_draws_never_advance_the_main_stream(self):
        network = make_network()
        network.degrade_link(
            "ireland", "canada", LinkDegradation(jitter_ms=5.0, drop_probability=0.5)
        )
        for _ in range(50):
            transmit(network, 0, 1)
        twin = SeededRng(1)
        assert [network.rng.uniform() for _ in range(4)] == [
            twin.uniform() for _ in range(4)
        ]

    def test_fault_stream_is_a_distinct_fork(self):
        rng = SeededRng(7)
        fork = rng.fault_stream()
        assert fork is not rng
        assert fork.uniform() != rng.fork(FAULT_RNG_STREAM + 1).uniform()
