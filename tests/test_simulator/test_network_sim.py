"""Tests for the simulated network, the simulation loop and the inline
runtime."""

from __future__ import annotations

import pytest

from repro.core.base import ProcessBase
from repro.core.commands import Command, Partitioner
from repro.core.config import ProtocolConfig
from repro.core.process import TempoProcess
from repro.simulator.events import EventKind
from repro.simulator.inline import InlineNetwork
from repro.simulator.latency import ec2_latency_matrix, uniform_latency_matrix
from repro.simulator.network import Network, NetworkOptions
from repro.simulator.rng import SeededRng
from repro.simulator.sim import Simulation, SimulationOptions


class EchoProcess(ProcessBase):
    """Minimal process used to test the runtimes: counts deliveries."""

    def __init__(self, process_id, config):
        super().__init__(process_id, config)
        self.seen = []
        self.ticks = 0

    def submit(self, command, now=0.0):
        self.send([1 - self.process_id], command, now)

    def on_message(self, sender, message, now):
        self.seen.append((sender, message, now))

    def tick(self, now):
        self.ticks += 1


def make_network(**options):
    matrix = ec2_latency_matrix(["ireland", "canada"])
    network = Network(matrix, NetworkOptions(**options), rng=SeededRng(1))
    network.place(0, "ireland")
    network.place(1, "canada")
    return network


class TestNetwork:
    def test_delay_between_sites_is_one_way_latency(self):
        network = make_network()
        assert network.delay(0, 1) == 36.0

    def test_local_delay(self):
        network = make_network()
        network.place(2, "ireland")
        assert network.delay(0, 2) == network.options.local_latency_ms

    def test_jitter_adds_bounded_noise(self):
        network = make_network(jitter_ms=5.0)
        delays = {network.delay(0, 1) for _ in range(20)}
        assert all(36.0 <= delay <= 41.0 for delay in delays)
        assert len(delays) > 1

    def test_crashed_destination_drops_messages(self):
        network = make_network()
        network.crash(1)
        delivered = []
        result = network.transmit(0, 1, "m", 0.0, lambda *args: delivered.append(args))
        assert result is None and not delivered
        assert network.stats.messages_dropped == 1

    def test_transmit_records_stats(self):
        from repro.core.identifiers import Dot
        from repro.core.messages import MPayload

        network = make_network()
        command = Command.write(Dot(0, 1), ["k"], payload_size=500)
        message = MPayload(command.dot, command, {0: (0, 1)})
        network.transmit(0, 1, message, 0.0, lambda *args: None)
        assert network.stats.messages_sent == 1
        assert network.stats.bytes_sent >= 500

    def test_measure_encoded_records_measured_frames(self):
        from repro.core.identifiers import Dot
        from repro.core.messages import MPayload, MStable
        from repro.wire import encoded_size

        network = make_network(measure_encoded=True)
        command = Command.write(Dot(0, 1), ["k"], payload_size=500)
        payload = MPayload(command.dot, command, {0: (0, 1)})
        stable = MStable(command.dot, partition=0)
        network.transmit(0, 1, payload, 0.0, lambda *args: None)
        network.transmit(0, 1, stable, 0.0, lambda *args: None)
        stats = network.stats
        # Estimate accounting is untouched; measured columns fill alongside.
        assert stats.bytes_sent == payload.size_bytes() + stable.size_bytes()
        assert stats.encoded_bytes == encoded_size(payload) + encoded_size(stable)
        assert stats.per_kind_encoded["MPayload"] == encoded_size(payload)
        assert stats.per_kind_estimated["MStable"] == stable.size_bytes()
        rows = {row["kind"]: row for row in network.drift_report()}
        # Epoch-2: size_bytes() is the exact frame length, so nothing drifts.
        assert rows["MStable"]["drifted"] is False
        assert rows["MPayload"]["drifted"] is False
        assert stats.bytes_sent == stats.encoded_bytes

    def test_measure_encoded_covers_batches(self):
        from repro.core.identifiers import Dot
        from repro.core.messages import MStable
        from repro.wire import encoded_size

        network = make_network(measure_encoded=True)
        messages = [MStable(Dot(0, seq), partition=0) for seq in range(1, 4)]
        network.transmit_batch(0, 1, messages, 0.0, lambda *args: None)
        stats = network.stats
        assert stats.encoded_bytes == sum(encoded_size(m) for m in messages)
        # The MBatch envelope adds framing on top of the inner frames.
        assert stats.encoded_batch_overhead > 0

    def test_measure_encoded_off_records_nothing(self):
        from repro.core.identifiers import Dot
        from repro.core.messages import MStable

        network = make_network()
        network.transmit(0, 1, MStable(Dot(0, 1), partition=0), 0.0, lambda *args: None)
        assert network.stats.encoded_bytes == 0
        assert not network.stats.per_kind_encoded
        assert network.drift_report() == []

    def test_drop_probability_validation(self):
        with pytest.raises(ValueError):
            NetworkOptions(drop_probability=1.5)

    def test_unplaced_endpoint_raises(self):
        network = make_network()
        with pytest.raises(KeyError):
            network.site_of(99)


class TestSimulationLoop:
    def build(self):
        config = ProtocolConfig(num_processes=3, faults=1)
        partitioner = Partitioner(1)
        processes = [
            TempoProcess(process_id, config, partitioner=partitioner)
            for process_id in range(3)
        ]
        matrix = uniform_latency_matrix(["a", "b", "c"], one_way_ms=10.0)
        network = Network(matrix)
        for process_id, site in zip(range(3), ["a", "b", "c"]):
            network.place(process_id, site)
        simulation = Simulation(processes, network, SimulationOptions(tick_interval=5.0, max_time=2_000.0))
        return processes, simulation

    def test_command_submission_executes_within_simulated_time(self):
        processes, simulation = self.build()
        command = processes[0].new_command(["x"])
        simulation.submit_at(1.0, 0, command)
        simulation.run()
        assert command.dot in processes[0].executed_dots()
        assert simulation.now <= 2_000.0

    def test_latency_is_respected(self):
        processes, simulation = self.build()
        command = processes[0].new_command(["x"])
        simulation.submit_at(0.0, 0, command)
        simulation.run()
        # Fast path needs one round trip of 20ms; execution cannot happen
        # before that.
        executed_at = simulation.stats.end_time
        assert executed_at >= 20.0

    def test_crash_event_marks_process_and_network(self):
        processes, simulation = self.build()
        simulation.crash_at(1.0, 2)
        simulation.run(until=10.0)
        assert not processes[2].alive
        assert simulation.network.is_crashed(2)
        assert not processes[0].believes_alive(2)

    def test_custom_callbacks_run(self):
        processes, simulation = self.build()
        fired = []
        simulation.schedule(3.0, lambda now: fired.append(now))
        simulation.run(until=10.0)
        assert fired and fired[0] == pytest.approx(3.0)

    def test_external_endpoint_receives_replies(self):
        processes, simulation = self.build()
        received = []
        simulation.network.place(-1, "a")
        simulation.register_external(-1, lambda sender, message, now: received.append(message))
        command = Command.write(processes[0].dot_generator.next_id(), ["x"], client_id=0)
        simulation.submit_at(0.0, 0, command)
        simulation.run()
        assert received, "client reply should have been routed to the external endpoint"

    def test_stop_predicate_halts_early(self):
        processes, simulation = self.build()
        command = processes[0].new_command(["x"])
        simulation.submit_at(0.0, 0, command)
        simulation.set_stop_predicate(lambda sim: sim.stats.events_processed >= 5)
        stats = simulation.run()
        assert stats.events_processed == 5

    def test_tick_events_recur(self):
        processes, simulation = self.build()
        simulation.run(until=50.0)
        assert simulation.stats.ticks >= 3 * 9

    def test_targeted_tick_keeps_the_seed_per_process_chain(self):
        """A TICK pushed with an explicit target (the seed's per-process
        form) ticks that process alone and perpetuates its own chain,
        without spawning a second fused all-process chain."""
        processes, simulation = self.build()
        simulation.queue.push(2.0, EventKind.TICK, target=0)
        simulation.run(until=20.0)
        # Fused chain: 5, 10, 15, 20 -> 4 walks x 3 processes; targeted
        # chain: 2, 7, 12, 17 -> 4 single ticks.
        assert simulation.stats.ticks == 4 * 3 + 4

    def test_process_registered_after_construction_is_accounted(self):
        """The dict-era API allowed adding processes to a running deployment
        (simulation.processes is public); the preallocated per-process
        message table must grow rather than crash."""
        config = ProtocolConfig(num_processes=3, faults=1)
        partitioner = Partitioner(1)
        processes = [
            TempoProcess(process_id, config, partitioner=partitioner)
            for process_id in range(3)
        ]
        matrix = uniform_latency_matrix(["a", "b", "c"], one_way_ms=10.0)
        network = Network(matrix)
        for process_id, site in zip(range(3), ["a", "b", "c"]):
            network.place(process_id, site)
        simulation = Simulation(processes[:2], network, SimulationOptions(max_time=2_000.0))
        simulation.processes[2] = processes[2]
        command = processes[0].new_command(["x"])
        simulation.submit_at(1.0, 0, command)
        simulation.run()
        assert simulation.stats.per_process_messages.get(2, 0) > 0


class TestInlineNetwork:
    def test_undeliverable_messages_are_collected(self):
        config = ProtocolConfig(num_processes=3, faults=1)
        processes = [EchoProcess(process_id, config) for process_id in range(3)]
        network = InlineNetwork(processes)
        processes[0].send([5], "nowhere", 0.0)
        network.step(0.0)
        assert network.undeliverable and network.undeliverable[0].destination == 5

    def test_run_raises_if_never_quiescent(self):
        config = ProtocolConfig(num_processes=3, faults=1)

        class Chatty(EchoProcess):
            def on_message(self, sender, message, now):
                super().on_message(sender, message, now)
                self.send([1 - self.process_id], message, now)

        processes = [Chatty(process_id, config) for process_id in range(3)]
        network = InlineNetwork(processes)
        processes[0].send([1], "ping", 0.0)
        with pytest.raises(RuntimeError):
            network.run(max_rounds=10)

    def test_reorder_hook_is_applied(self):
        config = ProtocolConfig(num_processes=3, faults=1)
        processes = [EchoProcess(process_id, config) for process_id in range(3)]
        network = InlineNetwork(processes)
        network.set_reorder(lambda envelopes: list(reversed(envelopes)))
        processes[0].send([1], "first", 0.0)
        processes[0].send([1], "second", 0.0)
        network.step(0.0)
        assert [message for _, message, _ in processes[1].seen] == ["second", "first"]


class TestRng:
    def test_seeded_rng_is_deterministic(self):
        assert [SeededRng(5).uniform() for _ in range(3)] == [
            SeededRng(5).uniform() for _ in range(3)
        ]

    def test_fork_produces_independent_streams(self):
        rng = SeededRng(1)
        assert rng.fork(1).uniform() != rng.fork(2).uniform()

    def test_zipf_sampler_prefers_popular_items(self):
        from repro.simulator.rng import ZipfSampler

        sampler = ZipfSampler(100, theta=0.99, rng=SeededRng(3))
        draws = [sampler.sample() for _ in range(2000)]
        head = sum(1 for draw in draws if draw < 10)
        tail = sum(1 for draw in draws if draw >= 90)
        assert head > tail

    def test_zipf_theta_zero_is_uniformish(self):
        from repro.simulator.rng import ZipfSampler

        sampler = ZipfSampler(10, theta=0.0, rng=SeededRng(3))
        draws = [sampler.sample() for _ in range(5000)]
        counts = [draws.count(index) for index in range(10)]
        assert max(counts) < 2.0 * min(counts)

    def test_zipf_sample_distinct(self):
        from repro.simulator.rng import ZipfSampler

        sampler = ZipfSampler(50, theta=0.5, rng=SeededRng(3))
        items = sampler.sample_distinct(5)
        assert len(set(items)) == 5

    def test_exponential_requires_positive_mean(self):
        with pytest.raises(ValueError):
            SeededRng(1).exponential(0.0)
