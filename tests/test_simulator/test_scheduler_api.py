"""Gate: nothing outside ``events.py`` touches scheduler internals.

The seed simulation loop reached into ``queue._heap`` / ``queue._counter``
on its hot paths; the timestamp-lane rewrite replaced those with first-class
APIs (``schedule_message``, ``pop_lane``, ``requeue_lane``).  This test
greps the source tree so a private-attribute reach can never quietly come
back — the public API must stay sufficient.
"""

from __future__ import annotations

import re
from pathlib import Path

import repro

SRC_ROOT = Path(repro.__file__).resolve().parent

#: Private attributes of :class:`repro.simulator.events.EventQueue`, plus
#: the historical ones (``_heap``/``_counter`` on a queue), forbidden
#: outside the module that defines them.
_FORBIDDEN = re.compile(
    r"queue\._"          # any private reach through a variable named queue
    r"|\.queue\._"       # ... or an attribute named queue
    r"|\._lanes\b"       # the lane table
    r"|\._times\b"       # the timestamp heap
)


def test_no_scheduler_internals_reached_outside_events_py():
    offenders = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        if path.name == "events.py" and path.parent.name == "simulator":
            continue
        text = path.read_text(encoding="utf-8")
        for line_number, line in enumerate(text.splitlines(), start=1):
            if _FORBIDDEN.search(line):
                offenders.append(f"{path.relative_to(SRC_ROOT)}:{line_number}: {line.strip()}")
    assert not offenders, (
        "scheduler internals reached outside events.py (use push/"
        "schedule_message/pop/pop_lane/requeue_lane/peek_time instead):\n"
        + "\n".join(offenders)
    )


def test_public_api_is_sufficient_for_a_simulation_loop():
    """Drive a miniature event loop through the public API only."""
    from repro.simulator.events import EventKind, EventQueue

    queue = EventQueue()
    queue.push(5.0, EventKind.TICK, target=1)
    queue.schedule_message(0.25, 0, 1, "hello")
    queue.schedule_message(0.25, 1, 0, "world")
    seen = []
    while True:
        popped = queue.pop_lane()
        if popped is None:
            break
        time, lane = popped
        for event in lane:
            seen.append((time, int(event[1]), event[2]))
    assert seen == [(0.25, 0, 1), (0.25, 0, 0), (5.0, 1, 1)]
    assert queue.peek_time() is None and len(queue) == 0
