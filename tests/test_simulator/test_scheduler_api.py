"""Gate: nothing outside ``events.py`` touches scheduler internals.

The seed simulation loop reached into ``queue._heap`` / ``queue._counter``
on its hot paths; the timestamp-lane rewrite replaced those with first-class
APIs (``schedule_message``, ``pop_lane``, ``requeue_lane``).  The gate is
the AST-based ``scheduler-internals`` lint from :mod:`repro.analysis.lint`
(also enforced repo-wide by ``python -m repro.analysis.lint`` in CI) — a
private-attribute reach can never quietly come back, and the public API
must stay sufficient.
"""

from __future__ import annotations

from repro.analysis.lint import scheduler_internal_findings


def test_no_scheduler_internals_reached_outside_events_py():
    offenders = [str(finding) for finding in scheduler_internal_findings()]
    assert not offenders, (
        "scheduler internals reached outside events.py (use push/"
        "schedule_message/pop/pop_lane/requeue_lane/peek_time instead):\n"
        + "\n".join(offenders)
    )


def test_public_api_is_sufficient_for_a_simulation_loop():
    """Drive a miniature event loop through the public API only."""
    from repro.simulator.events import EventKind, EventQueue

    queue = EventQueue()
    queue.push(5.0, EventKind.TICK, target=1)
    queue.schedule_message(0.25, 0, 1, "hello")
    queue.schedule_message(0.25, 1, 0, "world")
    seen = []
    while True:
        popped = queue.pop_lane()
        if popped is None:
            break
        time, lane = popped
        for event in lane:
            seen.append((time, int(event[1]), event[2]))
    assert seen == [(0.25, 0, 1), (0.25, 0, 0), (5.0, 1, 1)]
    assert queue.peek_time() is None and len(queue) == 0
