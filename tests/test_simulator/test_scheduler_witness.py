"""Determinism witness: lane scheduler vs reference flat-heap scheduler.

The byte-identical ``results/*.txt`` guarantee rests on the claim that the
two-level timestamp-lane queue orders events exactly as the seed's single
binary heap (with its ``(time, insertion counter)`` tiebreak) did.  This
test runs small fig5/fig6-shaped experiments under both schedulers and
asserts the full ``(time, kind, target, sender)`` event trace — every event
the simulation loop processes, in order — is identical.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest

from repro.cluster.config import ExperimentConfig
from repro.cluster.runner import run_experiment
from repro.simulator.events import EventQueue

# ``tests`` is not a package; pytest's rootdir import mode puts this test's
# directory on ``sys.path``, so the reference queue imports flat.
from reference_heap import HeapEventQueue

Trace = List[Tuple[float, int, int, int]]


def _tracing(queue_cls, trace: Trace):
    """Subclass ``queue_cls`` so every event handed to the simulation loop
    is appended to ``trace`` as ``(time, kind, target, sender)``."""

    class Tracing(queue_cls):
        def pop_lane(self, horizon=None):
            popped = super().pop_lane(horizon)
            if popped is not None:
                time, lane = popped
                for event in lane:
                    trace.append((time, int(event[1]), event[2], event[4]))
            return popped

    return Tracing


def _run_traced(queue_cls, config: ExperimentConfig, monkeypatch) -> Trace:
    trace: Trace = []
    with monkeypatch.context() as patch:
        patch.setattr(
            "repro.simulator.sim.EventQueue", _tracing(queue_cls, trace)
        )
        run_experiment(config)
    return trace


def _small_config(protocol: str, faults: int) -> ExperimentConfig:
    return ExperimentConfig(
        protocol=protocol,
        num_sites=5,
        faults=faults,
        clients_per_site=4,
        conflict_rate=0.15,
        duration_ms=1_000.0,
        warmup_ms=200.0,
        seed=1,
    )


class TestSchedulerWitness:
    @pytest.mark.parametrize("protocol,faults", [("tempo", 1), ("atlas", 1)])
    def test_event_trace_identical_under_both_schedulers(
        self, protocol, faults, monkeypatch
    ):
        config = _small_config(protocol, faults)
        lane_trace = _run_traced(EventQueue, config, monkeypatch)
        heap_trace = _run_traced(HeapEventQueue, config, monkeypatch)
        # A meaningful run: ticks, client submissions, deliveries, replies.
        assert len(lane_trace) > 2_000
        assert lane_trace == heap_trace

    def test_lane_scheduler_does_less_heap_work(self, monkeypatch):
        """The point of the two-level queue: one heap op per distinct
        timestamp (x2: insert + retire), not one per event."""
        config = _small_config("tempo", 1)
        captured = {}

        def capture(queue_cls, key):
            class Capturing(queue_cls):
                def __init__(self):
                    super().__init__()
                    captured[key] = self

            return Capturing

        with monkeypatch.context() as patch:
            patch.setattr(
                "repro.simulator.sim.EventQueue", capture(EventQueue, "lane")
            )
            run_experiment(config)
        with monkeypatch.context() as patch:
            patch.setattr(
                "repro.simulator.sim.EventQueue", capture(HeapEventQueue, "heap")
            )
            run_experiment(config)
        assert captured["lane"].heap_ops < captured["heap"].heap_ops
