"""Tests for the microbenchmark, YCSB+T and batching workloads."""

from __future__ import annotations

import pytest

from repro.kvstore.sharding import ShardMap
from repro.simulator.rng import SeededRng
from repro.workloads.batching import Batcher, BatchingModel
from repro.workloads.micro import MicroWorkload
from repro.workloads.ycsbt import YCSB_WORKLOADS, YcsbTWorkload
from repro.core.commands import Command
from repro.core.identifiers import Dot


class TestMicroWorkload:
    def test_zero_conflict_rate_never_picks_the_hot_key(self):
        workload = MicroWorkload(client_id=1, conflict_rate=0.0, rng=SeededRng(1))
        keys = [key for _ in range(200) for key in workload.next_keys()]
        assert "key-0" not in keys

    def test_full_conflict_rate_always_picks_the_hot_key(self):
        workload = MicroWorkload(client_id=1, conflict_rate=1.0, rng=SeededRng(1))
        for _ in range(50):
            assert workload.next_keys() == ["key-0"]

    def test_conflict_rate_is_approximately_respected(self):
        workload = MicroWorkload(client_id=3, conflict_rate=0.1, rng=SeededRng(7))
        draws = 5000
        hot = sum(1 for _ in range(draws) if workload.next_keys() == ["key-0"])
        assert 0.07 <= hot / draws <= 0.13

    def test_private_keys_are_unique_per_client(self):
        workload = MicroWorkload(client_id=5, conflict_rate=0.0, rng=SeededRng(1))
        keys = [workload.next_keys()[0] for _ in range(100)]
        assert len(set(keys)) == 100
        assert all(key.startswith("key-c5-") for key in keys)

    def test_read_ratio(self):
        workload = MicroWorkload(client_id=1, read_ratio=1.0, rng=SeededRng(1))
        assert workload.next_is_read()
        workload = MicroWorkload(client_id=1, read_ratio=0.0, rng=SeededRng(1))
        assert not workload.next_is_read()

    def test_multi_key_commands_deduplicate_keys(self):
        workload = MicroWorkload(
            client_id=1, conflict_rate=1.0, keys_per_command=3, rng=SeededRng(1)
        )
        assert workload.next_keys() == ["key-0"]

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroWorkload(client_id=0, conflict_rate=2.0)
        with pytest.raises(ValueError):
            MicroWorkload(client_id=0, keys_per_command=0)


class TestYcsbT:
    def test_two_distinct_keys_per_transaction(self):
        workload = YcsbTWorkload(
            client_id=1, shard_map=ShardMap(2), zipf=0.5, rng=SeededRng(2)
        )
        for _ in range(50):
            keys = workload.next_keys()
            assert len(keys) == 2 and len(set(keys)) == 2

    def test_workload_letters_map_to_write_ratios(self):
        assert YCSB_WORKLOADS == {"A": 0.50, "B": 0.05, "C": 0.00}
        workload = YcsbTWorkload.from_workload_letter(
            1, ShardMap(2), "B", rng=SeededRng(1)
        )
        assert workload.write_ratio == 0.05

    def test_unknown_letter_raises(self):
        with pytest.raises(KeyError):
            YcsbTWorkload.from_workload_letter(1, ShardMap(2), "Z")

    def test_read_only_workload_never_writes(self):
        workload = YcsbTWorkload(
            client_id=1, shard_map=ShardMap(2), write_ratio=0.0, rng=SeededRng(3)
        )
        assert all(workload.next_is_read() for _ in range(100))

    def test_higher_zipf_concentrates_on_popular_keys(self):
        low = YcsbTWorkload(
            client_id=1, shard_map=ShardMap(2), zipf=0.1, keys_per_shard=500,
            rng=SeededRng(4),
        )
        high = YcsbTWorkload(
            client_id=1, shard_map=ShardMap(2), zipf=0.99, keys_per_shard=500,
            rng=SeededRng(4),
        )

        def popular_fraction(workload):
            hits = 0
            for _ in range(500):
                for key in workload.next_keys():
                    if int(key[4:]) < 20:
                        hits += 1
            return hits

        assert popular_fraction(high) > popular_fraction(low)

    def test_shards_of_helper(self):
        shard_map = ShardMap(3)
        workload = YcsbTWorkload(client_id=1, shard_map=shard_map, rng=SeededRng(1))
        keys = ["user0", "user1"]
        assert workload.shards_of(keys) == shard_map.shards_of(keys)

    def test_write_ratio_validation(self):
        with pytest.raises(ValueError):
            YcsbTWorkload(client_id=1, shard_map=ShardMap(2), write_ratio=1.5)


class TestBatcher:
    def _command(self, index):
        return Command.write(Dot(0, index), ["k"])

    def test_flush_by_size(self):
        batcher = Batcher(max_size=3, max_delay_ms=1000.0)
        assert batcher.add(self._command(1), 0.0) is None
        assert batcher.add(self._command(2), 0.0) is None
        batch = batcher.add(self._command(3), 0.0)
        assert batch is not None and len(batch) == 3

    def test_flush_by_age(self):
        batcher = Batcher(max_size=100, max_delay_ms=5.0)
        batcher.add(self._command(1), 0.0)
        assert batcher.poll(4.0) is None
        batch = batcher.poll(5.1)
        assert batch is not None and len(batch) == 1

    def test_flush_empties_the_buffer(self):
        batcher = Batcher()
        batcher.add(self._command(1), 0.0)
        batcher.flush(0.0)
        assert batcher.pending() == 0
        assert batcher.flush(0.0) is None

    def test_average_batch_size(self):
        batcher = Batcher(max_size=2, max_delay_ms=100.0)
        batcher.add(self._command(1), 0.0)
        batcher.add(self._command(2), 0.0)
        batcher.add(self._command(3), 0.0)
        batcher.flush(0.0)
        assert batcher.average_batch_size() == 1.5

    def test_paper_batching_parameters_are_defaults(self):
        batcher = Batcher()
        assert batcher.max_size == 105
        assert batcher.max_delay_ms == 5.0


class TestBatchingModel:
    def test_disabled_model_has_no_amortization(self):
        assert BatchingModel(False).amortization_factor() == 1.0

    def test_enabled_model_caps_at_expected_batch_size(self):
        assert BatchingModel(True, expected_batch_size=105).amortization_factor() == 105.0

    def test_low_offered_rate_limits_batch_size(self):
        model = BatchingModel(True, expected_batch_size=105)
        # 1000 ops/s -> 5 commands per 5ms window.
        assert model.effective_batch(1000.0) == pytest.approx(5.0)

    def test_batch_size_never_below_one(self):
        model = BatchingModel(True)
        assert model.effective_batch(10.0) == 1.0
